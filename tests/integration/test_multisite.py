"""Integration: N players and observers (journal extension)."""

import pytest

from repro.core.config import SyncConfig
from repro.core.inputs import InputAssignment, PadSource, RandomSource
from repro.core.multisite import (
    SessionPlan,
    build_session,
    players_and_observers_plan,
)
from repro.emulator.machine import create_game
from repro.metrics.recorder import ConsistencyChecker
from repro.metrics.stats import mean
from repro.net.netem import NetemConfig


def player_sources(n, seed=20):
    return [PadSource(RandomSource(seed + i), player=i) for i in range(n)]


class TestManyPlayers:
    @pytest.mark.parametrize("players", [3, 4])
    def test_n_player_convergence(self, players):
        plan = SessionPlan(
            config=SyncConfig.paper_defaults(),
            assignment=InputAssignment.standard(players),
            machines=[create_game("counter") for __ in range(players)],
            sources=player_sources(players),
            max_frames=180,
        )
        session = build_session(plan, NetemConfig.for_rtt(0.040))
        session.run(horizon=300.0)
        traces = [vm.runtime.trace for vm in session.vms]
        assert ConsistencyChecker().verify_traces(traces) == 180

    def test_every_player_contributes(self):
        plan = SessionPlan(
            config=SyncConfig.paper_defaults(),
            assignment=InputAssignment.standard(3),
            machines=[create_game("counter") for __ in range(3)],
            sources=player_sources(3),
            max_frames=180,
        )
        session = build_session(plan, NetemConfig.for_rtt(0.030))
        session.run(horizon=300.0)
        inputs = session.vms[0].runtime.trace.inputs
        for player in range(3):
            mask = 0xFF << (8 * player)
            assert any(word & mask for word in inputs), f"player {player} silent"

    def test_slowest_link_gates_everyone(self):
        """One laggy player slows the whole mesh (lockstep's nature)."""
        plan = SessionPlan(
            config=SyncConfig.paper_defaults(),
            assignment=InputAssignment.standard(3),
            machines=[create_game("counter") for __ in range(3)],
            sources=player_sources(3),
            max_frames=240,
        )
        session = build_session(plan, NetemConfig.for_rtt(0.020))
        # Overwrite site2's links with a latency well past the threshold.
        slow = NetemConfig.for_rtt(0.400)
        session.network.connect("site0", "site2", slow)
        session.network.connect("site1", "site2", slow)
        session.run(horizon=600.0)
        traces = [vm.runtime.trace for vm in session.vms]
        assert ConsistencyChecker().verify_traces(traces) == 240
        times = session.vms[0].runtime.trace.frame_times()
        assert mean(times) > 1.2 / 60  # visibly slower than CFPS


class TestObservers:
    def test_observer_sees_identical_states(self):
        plan = players_and_observers_plan(
            SyncConfig.paper_defaults(),
            machine_factory=lambda: create_game("shooter"),
            player_sources=player_sources(2),
            num_observers=1,
            game_id="shooter",
            max_frames=180,
        )
        session = build_session(plan, NetemConfig.for_rtt(0.040))
        session.run(horizon=300.0)
        traces = [vm.runtime.trace for vm in session.vms]
        assert len(traces) == 3
        assert ConsistencyChecker().verify_traces(traces) == 180

    def test_observer_controls_no_bits(self):
        plan = players_and_observers_plan(
            SyncConfig.paper_defaults(),
            machine_factory=lambda: create_game("counter"),
            player_sources=player_sources(2),
            num_observers=1,
            max_frames=120,
        )
        session = build_session(plan, NetemConfig.for_rtt(0.040))
        session.run(horizon=300.0)
        observer = session.vms[2].runtime
        assert observer.lockstep.is_observer
        assert observer.lockstep.stats.local_inputs_buffered == 0
        # Observer inputs never appear in anyone's merged words.
        inputs = session.vms[0].runtime.trace.inputs
        assert all(word >> 16 == 0 for word in inputs)

    def test_players_do_not_wait_for_observer(self):
        """An observer behind a terrible link must not slow the players."""
        plan = players_and_observers_plan(
            SyncConfig.paper_defaults(),
            machine_factory=lambda: create_game("counter"),
            player_sources=player_sources(2),
            num_observers=1,
            max_frames=240,
        )
        session = build_session(plan, NetemConfig.for_rtt(0.020))
        awful = NetemConfig.for_rtt(0.800)
        session.network.connect("site0", "site2", awful)
        session.network.connect("site1", "site2", awful)
        session.run(horizon=600.0)
        player_times = session.vms[0].runtime.trace.frame_times()
        assert mean(player_times) == pytest.approx(1 / 60, rel=0.05)


class TestPlanValidation:
    def test_machine_count_must_match(self):
        with pytest.raises(ValueError):
            SessionPlan(
                config=SyncConfig(),
                assignment=InputAssignment.standard(2),
                machines=[create_game("counter")],
                sources=player_sources(2),
            )

    def test_source_count_must_match(self):
        with pytest.raises(ValueError):
            SessionPlan(
                config=SyncConfig(),
                assignment=InputAssignment.standard(2),
                machines=[create_game("counter") for __ in range(2)],
                sources=player_sources(1),
            )

    def test_start_delay_count_must_match(self):
        with pytest.raises(ValueError):
            SessionPlan(
                config=SyncConfig(),
                assignment=InputAssignment.standard(2),
                machines=[create_game("counter") for __ in range(2)],
                sources=player_sources(2),
                start_delays=[0.0],
            )

    def test_unknown_transport_rejected(self):
        plan = SessionPlan(
            config=SyncConfig(),
            assignment=InputAssignment.standard(2),
            machines=[create_game("counter") for __ in range(2)],
            sources=player_sources(2),
        )
        with pytest.raises(ValueError):
            build_session(plan, NetemConfig(), transport="carrier-pigeon")
