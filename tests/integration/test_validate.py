"""Integration: the paper-claims validator."""

import json

import pytest

from repro.harness.reproduce import write_reproduction
from repro.harness.validate import (
    CLAIMS,
    ClaimResult,
    validate_file,
    validate_results,
)


@pytest.fixture(scope="module")
def results(tmp_path_factory):
    """One reproduction bundle shared by this module's tests."""
    out = tmp_path_factory.mktemp("results")
    __, json_path = write_reproduction(str(out), frames=420)
    return json_path


class TestValidation:
    def test_all_claims_hold_on_fresh_results(self, results):
        outcomes = validate_file(results)
        assert len(outcomes) == len(CLAIMS)
        failing = [o for o in outcomes if not o.passed]
        assert not failing, "\n".join(str(o) for o in failing)

    def test_broken_results_fail_the_right_claim(self, results):
        payload = json.load(open(results))
        # Sabotage: pretend the game ran at 30 FPS on a perfect network.
        for row in payload["experiments"]["figure1"]:
            if row["rtt"] <= 0.100:
                row["frame_time_mean"] = 1 / 30
        outcomes = validate_results(payload)
        by_claim = {o.claim: o for o in outcomes}
        assert not by_claim["Figure 1: 60 FPS plateau below RTT 100 ms"].passed
        # Unrelated claims still pass.
        assert by_claim[
            "§3.1: a TCP-like transport is less smooth under loss"
        ].passed

    def test_missing_experiment_reported_not_crashed(self, results):
        payload = json.load(open(results))
        del payload["experiments"]["ablation_transport"]
        outcomes = validate_results(payload)
        tcp = next(o for o in outcomes if "TCP-like" in o.claim)
        assert not tcp.passed
        assert "not checkable" in tcp.detail

    def test_claim_result_formatting(self):
        ok = ClaimResult("claim A", True, "because")
        bad = ClaimResult("claim B", False, "nope")
        assert str(ok).startswith("[PASS]")
        assert str(bad).startswith("[FAIL]")

    def test_cli_validate_exit_codes(self, results, tmp_path, capsys):
        from repro.cli import main

        assert main(["validate", results]) == 0
        out = capsys.readouterr().out
        assert "12/12 claims hold" in out

        payload = json.load(open(results))
        for row in payload["experiments"]["figure2"]:
            row["synchrony"] = 0.5  # desynchronized everywhere
        broken = tmp_path / "broken.json"
        broken.write_text(json.dumps(payload))
        assert main(["validate", str(broken)]) == 1
