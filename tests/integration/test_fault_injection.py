"""Integration: behaviour under packet loss, outages and divergence faults."""

import pytest

from repro.core.config import SyncConfig
from repro.core.inputs import PadSource, RandomSource
from repro.core.multisite import SessionPlan, build_session, two_player_plan
from repro.core.inputs import InputAssignment
from repro.emulator.games.counter import NondeterministicMachine
from repro.emulator.machine import create_game
from repro.metrics.recorder import ConsistencyChecker, ConsistencyError
from repro.metrics.stats import mean
from repro.net.netem import NetemConfig


def run_two(netem, frames=240, seed=5, config=None, machines=None):
    if machines is None:
        plan = two_player_plan(
            config or SyncConfig.paper_defaults(),
            machine_factory=lambda: create_game("counter"),
            sources=[
                PadSource(RandomSource(seed), player=0),
                PadSource(RandomSource(seed + 1), player=1),
            ],
            max_frames=frames,
            seed=seed,
        )
    else:
        plan = SessionPlan(
            config=config or SyncConfig.paper_defaults(),
            assignment=InputAssignment.standard(2),
            machines=machines,
            sources=[
                PadSource(RandomSource(seed), player=0),
                PadSource(RandomSource(seed + 1), player=1),
            ],
            max_frames=frames,
            seed=seed,
        )
    session = build_session(plan, netem)
    session.run(horizon=900.0)
    return session


class TestPacketLoss:
    @pytest.mark.parametrize("loss", [0.05, 0.15, 0.30])
    def test_convergence_under_loss(self, loss):
        session = run_two(NetemConfig(delay=0.02, loss=loss))
        traces = [vm.runtime.trace for vm in session.vms]
        assert ConsistencyChecker().verify_traces(traces) == 240

    def test_loss_triggers_retransmission(self):
        session = run_two(NetemConfig(delay=0.02, loss=0.2))
        stats = session.vms[0].runtime.lockstep.stats
        assert stats.inputs_retransmitted > 0

    def test_heavy_loss_degrades_but_survives(self):
        clean = run_two(NetemConfig(delay=0.02))
        lossy = run_two(NetemConfig(delay=0.02, loss=0.5))
        traces = [vm.runtime.trace for vm in lossy.vms]
        assert ConsistencyChecker().verify_traces(traces) == 240
        assert mean(
            lossy.vms[0].runtime.trace.frame_times()
        ) >= mean(clean.vms[0].runtime.trace.frame_times())


class TestOutage:
    def test_temporary_outage_freezes_then_recovers(self):
        """§3.1: 'the local site will be stuck in the loop freezing the game
        until it is recovered.'"""
        plan = two_player_plan(
            SyncConfig.paper_defaults(),
            machine_factory=lambda: create_game("counter"),
            sources=[
                PadSource(RandomSource(5), player=0),
                PadSource(RandomSource(6), player=1),
            ],
            max_frames=360,
            seed=5,
        )
        netem = NetemConfig.for_rtt(0.020)
        session = build_session(plan, netem)
        blackout = NetemConfig(delay=0.01, loss=1.0)
        # Kill the link from t=2s to t=3s.
        session.loop.call_at(
            2.0, lambda: session.network.connect("site0", "site1", blackout)
        )
        session.loop.call_at(
            3.0, lambda: session.network.connect("site0", "site1", netem)
        )
        session.run(horizon=600.0)
        traces = [vm.runtime.trace for vm in session.vms]
        assert ConsistencyChecker().verify_traces(traces) == 360
        # Some frame must have stalled for a large fraction of the outage.
        max_frame_time = max(session.vms[0].runtime.trace.frame_times())
        assert max_frame_time > 0.5

    def test_game_state_unaffected_by_outage(self):
        """The frozen game resumes exactly; no inputs are skipped."""
        plan_checksums = None
        for inject_outage in (False, True):
            plan = two_player_plan(
                SyncConfig.paper_defaults(),
                machine_factory=lambda: create_game("counter"),
                sources=[
                    PadSource(RandomSource(5), player=0),
                    PadSource(RandomSource(6), player=1),
                ],
                max_frames=240,
                seed=5,
            )
            netem = NetemConfig.for_rtt(0.020)
            session = build_session(plan, netem)
            if inject_outage:
                blackout = NetemConfig(delay=0.01, loss=1.0)
                session.loop.call_at(
                    1.0,
                    lambda: session.network.connect("site0", "site1", blackout),
                )
                session.loop.call_at(
                    1.6,
                    lambda: session.network.connect("site0", "site1", netem),
                )
            session.run(horizon=600.0)
            checksums = session.vms[0].runtime.trace.checksums
            if plan_checksums is None:
                plan_checksums = checksums
            else:
                assert checksums == plan_checksums


class TestDivergenceDetection:
    def test_nondeterministic_game_caught(self):
        """§5's warning: a non-deterministic VM breaks the whole scheme —
        and our checker must catch it, not mask it."""
        session = run_two(
            NetemConfig.for_rtt(0.020),
            frames=120,
            machines=[NondeterministicMachine(), NondeterministicMachine()],
        )
        traces = [vm.runtime.trace for vm in session.vms]
        with pytest.raises(ConsistencyError):
            ConsistencyChecker().verify_traces(traces)
