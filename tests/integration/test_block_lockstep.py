"""Block-translated consoles inside a real lockstep session.

The ISSUE-6 end-to-end criterion: a two-site session where one site runs
the block translator and the other the retained reference interpreter
must stay checksum-bit-identical frame by frame.  This is stricter than
the golden-trace tests — the sites exchange inputs over the simulated
network, so any divergence (including one only visible after save/load
or delta sync) desyncs the session and fails the consistency check.
"""

from repro.core.config import SyncConfig
from repro.core.inputs import PadSource, RandomSource
from repro.core.multisite import build_session, two_player_plan
from repro.emulator.machine import create_game
from repro.metrics.recorder import ConsistencyChecker
from repro.net.netem import NetemConfig

FRAMES = 240


def run_mixed_session(game: str, frames: int = FRAMES):
    plan = two_player_plan(
        SyncConfig.paper_defaults(),
        machine_factory=lambda: create_game(game),
        sources=[
            PadSource(RandomSource(3), player=0),
            PadSource(RandomSource(4), player=1),
        ],
        game_id=game,
        max_frames=frames,
        seed=3,
    )
    # Site 0 keeps the default block translator; site 1 is its spec twin.
    assert plan.machines[0].interpreter == "block"
    plan.machines[1].interpreter = "reference"
    session = build_session(plan, NetemConfig.for_rtt(0.040))
    session.run(horizon=600.0)
    return session


def test_block_site_matches_reference_site():
    session = run_mixed_session("pong")
    traces = [vm.runtime.trace for vm in session.vms]
    assert ConsistencyChecker().verify_traces(traces) == FRAMES
    # The block site really did run compiled blocks.
    stats = session.vms[0].runtime.machine.cpu_stats()
    assert stats["blocks_compiled"] > 0
    assert stats["block_hits"] > 0


def test_smc_rom_lockstep_with_invalidations():
    """Self-modifying code under lockstep: invalidations happen live and
    the sites still agree every frame."""
    session = run_mixed_session("smc", frames=180)
    traces = [vm.runtime.trace for vm in session.vms]
    assert ConsistencyChecker().verify_traces(traces) == 180
    stats = session.vms[0].runtime.machine.cpu_stats()
    assert stats["block_invalidations"] > 0


def test_block_counters_surface_in_metrics_snapshot():
    """The obs mirror: cpu_* counters ride along in the site snapshot."""
    session = run_mixed_session("pong", frames=120)
    vm = session.vms[0]
    counters = vm.runtime.metrics.snapshot(vm.runtime)["counters"]
    assert counters["cpu_blocks_compiled"] > 0
    assert counters["cpu_block_hits"] > 0
    assert counters["cpu_block_invalidations"] == 0  # pong never self-patches
