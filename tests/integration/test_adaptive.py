"""Integration: adaptive consistency (mid-session lockstep↔rollback).

Every test here holds the adaptive layer to one standard: a session that
switches modes mid-flight must end *bit-identical* to a twin session that
never switched.  The twin shares the game image, the seeds and the
impaired links; the only difference is that its consistency mode is fixed
for the whole run.
"""

import pytest

from repro.core.config import SyncConfig
from repro.core.inputs import PadSource, RandomSource
from repro.core.messages import MODE_ROLLBACK
from repro.core.multisite import build_session, two_player_plan
from repro.core.policy import build_adaptive_session
from repro.emulator.machine import create_game
from repro.metrics.recorder import ConsistencyChecker
from repro.net.netem import named_profile

FRAMES = 300


def sources(seed):
    return [PadSource(RandomSource(seed + s), s) for s in (0, 1)]


def lockstep_twin(netem, seed, frames=FRAMES, config=None):
    """A plain fixed-mode lockstep session over the same links/inputs."""
    plan = two_player_plan(
        config if config is not None else SyncConfig(),
        machine_factory=lambda: create_game("counter"),
        sources=sources(seed),
        game_id="counter",
        max_frames=frames,
        seed=seed,
    )
    session = build_session(plan, netem)
    session.run(horizon=600.0)
    return session


def adaptive_run(netem, seed, frames=FRAMES, **kwargs):
    session = build_adaptive_session(
        lambda: create_game("counter"),
        sources(seed),
        netem,
        frames=frames,
        seed=seed,
        game_id="counter",
        **kwargs,
    )
    session.run(horizon=600.0)
    return session


class TestSwitchToRollback:
    """A degraded WAN (200 ms RTT, above the 140 ms threshold) drives the
    policy from its lockstep start into rollback mid-session."""

    def test_switch_commits_and_matches_never_switched_twin(self):
        netem = named_profile("wan-120", rtt=0.200)
        adaptive = adaptive_run(netem, seed=11)

        traces = [vm.runtime.trace for vm in adaptive.vms]
        assert ConsistencyChecker().verify_traces(traces) == FRAMES
        for vm in adaptive.vms:
            assert vm.mode_name == "rollback"
            assert vm.policy_switch_count >= 1

        twin = lockstep_twin(netem, seed=11)
        assert traces[0].checksums == twin.vms[0].runtime.trace.checksums

    def test_switch_rides_acked_handshake(self):
        """Both sites keep the propose→commit pair in their switch log,
        nothing aborts, and the commit happens at a frame boundary after
        the proposal — never before the acks could have arrived."""
        adaptive = adaptive_run(named_profile("wan-120", rtt=0.200), seed=11)
        for vm in adaptive.vms:
            kinds = [entry[0] for entry in vm.switch_log]
            assert kinds == ["propose", "commit"]
            (_, proposed_at, _, _, _), (_, committed_at, _, _, _) = vm.switch_log
            # One full round trip (200 ms) must separate the two.
            assert committed_at - proposed_at >= 0.200

    def test_policy_switch_metric_exported(self):
        adaptive = adaptive_run(named_profile("wan-120", rtt=0.200), seed=11)
        for vm in adaptive.vms:
            snapshot = vm.runtime.metrics.snapshot(vm.runtime)
            assert snapshot["counters"]["policy_switches"] >= 1
            assert 0.0 <= snapshot["gauges"]["predict_hit_ratio"] <= 1.0
            assert snapshot["gauges"]["buf_frame_current"] == 6


class TestSwitchToLockstep:
    """The reverse direction: a rollback-born session over a healthy LAN
    (40 ms RTT, below the 100 ms threshold) settles back into lockstep."""

    def test_settles_and_matches_rollback_twin_outcome(self):
        netem = named_profile("wan-120", rtt=0.040)
        adaptive = adaptive_run(netem, seed=13, initial_mode=MODE_ROLLBACK)

        traces = [vm.runtime.trace for vm in adaptive.vms]
        assert ConsistencyChecker().verify_traces(traces) == FRAMES
        for vm in adaptive.vms:
            assert vm.mode_name == "lockstep"
            assert vm.policy_switch_count >= 1

        # The input word sequence is lag-invariantly defined by the seeds,
        # so even across the rollback→lockstep settle the run must equal
        # the fixed-lockstep twin bit for bit.
        twin = lockstep_twin(netem, seed=13)
        assert traces[0].checksums == twin.vms[0].runtime.trace.checksums


class TestStableConditionsNeverSwitch:
    def test_good_link_stays_lockstep_forever(self):
        adaptive = adaptive_run(named_profile("wan-120", rtt=0.060), seed=17)
        for vm in adaptive.vms:
            assert vm.mode_name == "lockstep"
            assert vm.policy_switch_count == 0

    def test_hysteresis_band_never_flaps(self):
        """At 120 ms RTT — between the two thresholds — a lockstep-born
        session must not oscillate."""
        adaptive = adaptive_run(named_profile("wan-120", rtt=0.120), seed=19)
        for vm in adaptive.vms:
            assert vm.policy_switch_count == 0


class TestSweepHarness:
    """The `repro sweep` surface itself (quick points only; the full grid
    runs from the CLI / bench)."""

    def test_quick_sweep_passes(self):
        from repro.harness.sweep import quick_sweep

        points = quick_sweep(seed=7)
        for point in points:
            assert point.passed, point.problems

    def test_collapsed_point_shows_the_contrast(self):
        from repro.harness.sweep import run_sweep_point

        point = run_sweep_point("wan-120", 0.300, frames=240, seed=7)
        assert point.passed, point.problems
        # Pure lockstep has left the 60 FPS slot (the pipeline floor at
        # 300 ms RTT is 150 ms/6 = 25 ms ≈ 1.5× the slot); adaptive has not.
        assert point.lockstep_frame_mean > point.adaptive_frame_mean * 1.3
        assert point.switches >= 1

    def test_sweep_is_deterministic(self):
        from repro.harness.sweep import run_sweep_point

        a = run_sweep_point("loss-burst", 0.200, frames=180, seed=23)
        b = run_sweep_point("loss-burst", 0.200, frames=180, seed=23)
        assert a.passed and b.passed
        assert a.adaptive_frame_mean == b.adaptive_frame_mean
        assert a.lockstep_frame_mean == b.lockstep_frame_mean
        assert a.switches == b.switches
