"""Integration: the asyncio driver hosting many sessions in one process.

The acceptance bar for the sans-IO refactor: eight concurrent two-site
sessions (sixteen sites) multiplexed on a single event loop, each
producing exactly the per-frame checksums of its discrete-event twin —
merged inputs depend only on the sources and the lag, never on timing.
"""

from repro.core.aio import AioSessionSpec, run_sessions, simulator_checksums
from repro.core.config import SyncConfig


def make_specs(count, frames=60):
    config = SyncConfig(cfps=120, buf_frame=6)
    return [
        AioSessionSpec(
            game="counter",
            frames=frames,
            seed=100 + index,
            config=config,
            session_id=index + 1,
            linger=0.5,  # bound the post-game pump; see AioSessionSpec
        )
        for index in range(count)
    ]


class TestAioDriver:
    def test_eight_concurrent_sessions_match_the_simulator(self):
        specs = make_specs(8)
        groups = run_sessions(specs)
        assert len(groups) == 8
        for spec, runtimes in zip(specs, groups):
            checksums = [list(rt.trace.checksums) for rt in runtimes]
            # Both replicas executed every frame...
            assert all(len(c) == spec.frames for c in checksums)
            # ...agree with each other...
            assert checksums[0] == checksums[1]
            # ...and with the discrete-event twin for the same seeds.
            assert checksums[0] == simulator_checksums(spec)

    def test_sessions_are_independent(self):
        # Different seeds steer different input streams, so concurrent
        # sessions must not share any lockstep state.
        specs = make_specs(2, frames=40)
        groups = run_sessions(specs)
        first = [rt.trace.checksums for rt in groups[0]]
        second = [rt.trace.checksums for rt in groups[1]]
        assert list(first[0]) != list(second[0])
