"""Integration: asymmetric links, rate limits and other network shapes."""

import pytest

from repro.core.config import SyncConfig
from repro.core.inputs import PadSource, RandomSource
from repro.core.multisite import build_session, two_player_plan
from repro.emulator.machine import create_game
from repro.metrics.recorder import ConsistencyChecker
from repro.metrics.stats import mean
from repro.net.netem import NetemConfig


def make_plan(frames=240, seed=13, config=None):
    return two_player_plan(
        config or SyncConfig.paper_defaults(),
        machine_factory=lambda: create_game("counter"),
        sources=[
            PadSource(RandomSource(seed), player=0),
            PadSource(RandomSource(seed + 1), player=1),
        ],
        game_id="counter",
        max_frames=frames,
        seed=seed,
    )


class TestAsymmetricLinks:
    def test_asymmetric_rtt_converges(self):
        """One-way 10 ms up, 110 ms down (e.g. satellite-ish asymmetry)."""
        plan = make_plan()
        session = build_session(plan, NetemConfig(delay=0.010))
        session.network.connect(
            "site0",
            "site1",
            NetemConfig(delay=0.010),
            reverse_config=NetemConfig(delay=0.110),
        )
        session.run(horizon=600.0)
        traces = [vm.runtime.trace for vm in session.vms]
        assert ConsistencyChecker().verify_traces(traces) == 240
        # Total one-way budget is per-direction; the slow direction (110 ms)
        # stays within the 100+ ms budget only marginally — the game may
        # slow slightly but must stay near CFPS.
        assert mean(session.vms[0].runtime.trace.frame_times()) < 1 / 60 * 1.3

    def test_rtt_estimate_reflects_sum_of_directions(self):
        plan = make_plan(frames=300)
        session = build_session(plan, NetemConfig(delay=0.010))
        session.network.connect(
            "site0",
            "site1",
            NetemConfig(delay=0.020),
            reverse_config=NetemConfig(delay=0.060),
        )
        session.run(horizon=600.0)
        for vm in session.vms:
            assert vm.runtime.rtt.rtt == pytest.approx(0.080, abs=0.02)


class TestRateLimitedLinks:
    def test_constrained_bandwidth_still_converges(self):
        """A 4 kB/s link (v2 sync traffic is ~1 kB/s/site) serializes
        messages but the session survives and converges."""
        plan = make_plan()
        netem = NetemConfig(delay=0.020, rate_bytes_per_s=4_000)
        session = build_session(plan, netem)
        session.run(horizon=600.0)
        traces = [vm.runtime.trace for vm in session.vms]
        assert ConsistencyChecker().verify_traces(traces) == 240

    def test_starved_link_freezes_but_never_diverges(self):
        """600 B/s is below the protocol's floor rate (~930 B/s of v2
        sync traffic per site; the v1 codec needed ~2.5 kB/s): with no
        congestion control the send queue grows without bound and the
        game freezes — the §3.1 freeze semantics — but the frames that
        did complete are still bit-identical.  Consistency is
        unconditional; progress is not."""
        plan = make_plan(frames=180)
        netem = NetemConfig(delay=0.005, rate_bytes_per_s=600)
        session = build_session(plan, netem)
        with pytest.raises(RuntimeError, match="did not finish"):
            session.run(horizon=300.0)
        traces = [vm.runtime.trace for vm in session.vms]
        verified = ConsistencyChecker().verify_traces(traces)
        assert verified == min(t.frames for t in traces)


class TestJitterHeavyLinks:
    def test_extreme_jitter_with_reordering(self):
        netem = NetemConfig(delay=0.040, jitter=0.035, reorder=0.2)
        plan = make_plan()
        session = build_session(plan, netem)
        session.run(horizon=600.0)
        traces = [vm.runtime.trace for vm in session.vms]
        assert ConsistencyChecker().verify_traces(traces) == 240
