"""The scripted chaos fault matrix (ISSUE acceptance scenarios).

Each test runs a full two-site simulated session under a
:class:`~repro.net.faults.FaultSchedule` via :func:`repro.harness.chaos.run_chaos`,
which also runs an unimpaired *twin* of the same session and compares
per-frame checksums.  ``result.passed`` already folds in the harness's
invariants (twin equality, bounded input-buffer memory, clean termination,
telemetry/ground-truth alignment); the tests below additionally pin the
specific facts each scenario is about.
"""

import pytest

from repro.harness.chaos import (
    abandonment_schedule,
    chaos_config,
    crash_resume_schedule,
    partition_heal_schedule,
    run_chaos,
)
from repro.net.faults import Crash, FaultSchedule, OneWayLinkDown, Partition


class TestPartitionHeal:
    def test_two_second_partition_heals_without_desync(self):
        result = run_chaos(partition_heal_schedule(start=2.0, duration=2.0))
        assert result.passed, result.problems
        for out in result.outcomes:
            assert out.finished
            assert out.termination == "completed"
            # The partition outlives hard_stall_s, so both sites must have
            # suspended and then recovered purely from sync retransmission
            # (no RESUME handshake involved in a partition heal).  The
            # cumulative counters see this even after the bounded trace
            # ring has rotated the episode's records out.
            counters = out.metrics["counters"]
            assert counters["degraded_episodes"] >= 1
            assert counters["suspended_seconds"] > 0.0
            assert counters["resumes"] >= 1
            assert not any(r["kind"] == "peer_lost" for r in out.trace)

    def test_fault_log_records_partition_and_heal(self):
        result = run_chaos(partition_heal_schedule(start=2.0, duration=2.0))
        kinds = [e["kind"] for e in result.fault_log]
        assert kinds.count("link_down") == 2  # both directions cut
        assert kinds.count("link_up") == 2  # both healed
        downs = [e["t"] for e in result.fault_log if e["kind"] == "link_down"]
        ups = [e["t"] for e in result.fault_log if e["kind"] == "link_up"]
        assert all(abs(t - 2.0) < 1e-9 for t in downs)
        assert all(abs(t - 4.0) < 1e-9 for t in ups)

    def test_ground_truth_conservation_law(self):
        result = run_chaos(partition_heal_schedule(start=2.0, duration=2.0))
        truth = result.ground_truth
        assert truth["sent"] > 0
        assert truth["dropped"] > 0  # the partition blackholed real traffic
        assert truth["delivered"] == (
            truth["sent"]
            - truth["dropped"]
            + truth["duplicated"]
            - truth.get("undeliverable", 0)
        )

    def test_input_buffers_stay_bounded_in_long_partition(self):
        # A partition several times hard_stall_s: memory must not track
        # partition length (the gate stops the producer).
        config = chaos_config()
        result = run_chaos(
            partition_heal_schedule(start=2.0, duration=6.0),
            config=config,
            frames=300,
        )
        assert result.passed, result.problems
        bound = 3 * config.buf_frame + 3
        for site, high in result.ibuf_high_water.items():
            assert 0 < high <= bound, (site, high)


class TestCrashResume:
    def test_resumed_site_checksums_match_uninterrupted_twin(self):
        result = run_chaos(crash_resume_schedule(at=2.0, downtime=1.5, site=1))
        assert result.passed, result.problems
        survivor = result.outcome(0)
        resumed = result.outcome(1, resumed=True)
        assert survivor.finished and resumed.finished
        # The resumed incarnation re-entered mid-session...
        assert resumed.first_frame > 0
        # ...and every checksum from there on equals the twin's (the
        # replayed input backlog was bit-identical).
        offset = resumed.first_frame
        for index, checksum in enumerate(resumed.checksums):
            assert checksum == result.twin_checksums[offset + index]
        assert resumed.metrics["counters"]["resumes"] >= 1

    def test_donor_suspends_then_serves_resume(self):
        result = run_chaos(crash_resume_schedule(at=2.0, downtime=1.5, site=1))
        survivor = result.outcome(0)
        counters = survivor.metrics["counters"]
        assert counters["suspended_seconds"] > 0.0
        assert counters["resumes"] >= 1
        assert counters["state_serves"] >= 1  # the RESUME was answered

    def test_crash_is_in_the_fault_log(self):
        result = run_chaos(crash_resume_schedule(at=2.0, downtime=1.5, site=1))
        crashes = [e for e in result.fault_log if e["kind"] == "crash"]
        restarts = [e for e in result.fault_log if e["kind"] == "restart"]
        assert len(crashes) == 1 and abs(crashes[0]["t"] - 2.0) < 1e-9
        assert len(restarts) == 1 and abs(restarts[0]["t"] - 3.5) < 1e-9


class TestAbandonment:
    def test_survivor_terminates_peer_lost_within_budget(self):
        config = chaos_config()
        result = run_chaos(
            abandonment_schedule(at=2.0, site=1),
            config=config,
            expect_completion=False,
        )
        assert result.passed, result.problems
        survivor = result.outcome(0)
        assert survivor.termination == "peer-lost"
        assert not survivor.finished
        lost = [r for r in survivor.trace if r["kind"] == "peer_lost"]
        assert lost
        # Clean termination within stall detection + resume deadline, with
        # slack for the gate poll and frame timing.
        bound = 2.0 + config.hard_stall_s + config.resume_deadline_s + 1.0
        assert lost[-1]["t"] <= bound
        assert 1 in lost[-1]["waiting_on"]


class TestScriptedSchedules:
    def test_one_way_link_death_heals_without_desync(self):
        schedule = FaultSchedule(
            one_way=[OneWayLinkDown(start=2.0, src=1, dst=0, end=4.0)]
        )
        result = run_chaos(schedule)
        assert result.passed, result.problems
        # Only one direction died; the victim is the site that stopped
        # hearing its peer.
        survivor = result.outcome(0)
        assert survivor.metrics["counters"]["degraded_episodes"] >= 1

    def test_combined_schedule_applies_in_order(self):
        schedule = FaultSchedule(
            partitions=[Partition(2.0, 3.0, (0,), (1,))],
            crashes=[Crash(6.0, 1, restart_at=7.0)],
        )
        # Enough frames that the session is still mid-run at the crash
        # (the partition stall already pushes the timeline out by ~1 s).
        result = run_chaos(schedule, frames=600)
        assert result.passed, result.problems
        times = [e["t"] for e in result.fault_log]
        assert times == sorted(times)
        kinds = [e["kind"] for e in result.fault_log]
        assert kinds.index("link_down") < kinds.index("crash")

    def test_schedule_horizon_and_sites(self):
        schedule = FaultSchedule(
            partitions=[Partition(1.0, 2.0, (0,), (1,))],
            crashes=[Crash(5.0, 1, restart_at=8.0)],
        )
        assert schedule.horizon() == 8.0
        assert schedule.all_sites() == [0, 1]


@pytest.mark.parametrize("seed", [3, 11])
def test_fault_matrix_is_seed_independent(seed):
    result = run_chaos(
        partition_heal_schedule(start=2.0, duration=2.0), seed=seed
    )
    assert result.passed, result.problems


class TestPartitionDuringSwitch:
    """A partition landing on the lockstep→rollback handshake: the switch
    must abort cleanly (old mode keeps running), then complete after the
    heal — and the whole session still matches a never-switched twin."""

    def run_partitioned_switch(self, seed=11):
        from repro.core.inputs import PadSource, RandomSource
        from repro.core.multisite import (
            build_session,
            site_address,
            two_player_plan,
        )
        from repro.core.config import SyncConfig
        from repro.core.policy import build_adaptive_session
        from repro.emulator.machine import create_game
        from repro.net.netem import named_profile

        netem = named_profile("wan-120", rtt=0.200)

        def sources():
            return [PadSource(RandomSource(seed + s), s) for s in (0, 1)]

        # The first RTT samples land ~0.2 s in and the policy proposes on
        # the next flush (~0.21 s); its SWITCH_REQ is in flight when the
        # link dies at 0.25 s, so the request *arrives* but every ack is
        # blackholed mid-handshake.  The 1.75 s outage stays inside the
        # liveness budget so neither site drops the other.
        schedule = FaultSchedule(
            partitions=[Partition(0.25, 2.0, (0,), (1,))]
        )
        session = build_adaptive_session(
            lambda: create_game("counter"),
            sources(),
            netem,
            frames=240,
            seed=seed,
            game_id="counter",
        )
        schedule.apply_link_faults(
            session.network, {s: site_address(s) for s in (0, 1)}, [0, 1]
        )
        session.run(horizon=600.0)

        plan = two_player_plan(
            SyncConfig(),
            machine_factory=lambda: create_game("counter"),
            sources=sources(),
            game_id="counter",
            max_frames=240,
            seed=seed,
        )
        twin = build_session(plan, netem)  # same links, no partition
        twin.run(horizon=600.0)
        return session, twin

    def test_switch_aborts_then_completes_after_heal(self):
        session, _ = self.run_partitioned_switch()
        for vm in session.vms:
            kinds = [entry[0] for entry in vm.switch_log]
            # At least one proposal died in the partition, and the engine
            # stayed in its old mode rather than half-switching...
            assert "abort" in kinds
            # ...then a post-heal proposal carried the switch through.
            assert kinds[-1] == "commit"
            assert kinds.index("abort") < kinds.index("commit")
            assert vm.mode_name == "rollback"
            assert vm.policy_switch_count >= 1

    def test_no_desync_and_twin_equality_across_abort(self):
        from repro.metrics.recorder import ConsistencyChecker

        session, twin = self.run_partitioned_switch()
        traces = [vm.runtime.trace for vm in session.vms]
        assert ConsistencyChecker().verify_traces(traces) == 240
        assert (
            traces[0].checksums == twin.vms[0].runtime.trace.checksums
        )
