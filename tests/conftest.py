"""Shared fixtures for the test suite."""

import pytest

from repro.core.config import SyncConfig
from repro.core.inputs import InputAssignment
from repro.sim.eventloop import EventLoop


@pytest.fixture
def loop() -> EventLoop:
    """A fresh discrete-event loop."""
    return EventLoop()


@pytest.fixture
def config() -> SyncConfig:
    """The paper's default sync configuration."""
    return SyncConfig.paper_defaults()


@pytest.fixture
def two_sites() -> InputAssignment:
    """The paper's two-site, one-player-per-site assignment."""
    return InputAssignment.standard(2)
