"""Unit tests for repro.core.session — lobby and the start protocol."""

import pytest

from repro.core.config import SyncConfig
from repro.core.messages import Hello, Start, StartAck, Welcome
from repro.core.session import (
    Lobby,
    SessionControl,
    SessionError,
    SessionPhase,
    config_digest,
    game_digest,
)

ADDRESSES = {0: "site0", 1: "site1"}


def make_pair(config=None):
    config = config or SyncConfig()
    master = SessionControl(config, 0, 2, "pong", 1, ADDRESSES)
    joiner = SessionControl(config, 1, 2, "pong", 1, ADDRESSES)
    return master, joiner


def exchange(sender_ctrl, receiver_ctrl, now):
    """Deliver everything sender polls out; return receiver's replies."""
    replies = []
    for message, __dest in sender_ctrl.poll(now):
        replies.extend(receiver_ctrl.on_message(message, now))
    return replies


class TestLobby:
    def test_advertise_and_find(self):
        lobby = Lobby()
        entry = lobby.advertise("fight-night", "host:1", "sf2", num_sites=2)
        assert lobby.find("fight-night") is entry
        assert entry.session_id == 1

    def test_duplicate_name_rejected(self):
        lobby = Lobby()
        lobby.advertise("a", "x", "g")
        with pytest.raises(SessionError):
            lobby.advertise("a", "y", "g")

    def test_unknown_session(self):
        with pytest.raises(SessionError):
            Lobby().find("ghost")

    def test_withdraw(self):
        lobby = Lobby()
        lobby.advertise("a", "x", "g")
        lobby.withdraw("a")
        with pytest.raises(SessionError):
            lobby.find("a")

    def test_listing_sorted(self):
        lobby = Lobby()
        lobby.advertise("zeta", "x", "g")
        lobby.advertise("alpha", "y", "g")
        assert [e.name for e in lobby.listing()] == ["alpha", "zeta"]

    def test_session_ids_unique(self):
        lobby = Lobby()
        a = lobby.advertise("a", "x", "g")
        b = lobby.advertise("b", "y", "g")
        assert a.session_id != b.session_id


class TestHandshake:
    def test_full_handshake(self):
        master, joiner = make_pair()
        now = 0.0
        # Joiner HELLOs; master WELCOMEs.
        for message, dest in joiner.poll(now):
            assert isinstance(message, Hello)
            replies = master.on_message(message, now)
            for reply, __ in replies:
                assert isinstance(reply, Welcome)
                joiner.on_message(reply, now)
        assert joiner.phase is SessionPhase.WAITING
        # Master polls: all joined -> START + begins immediately.
        now = 0.1
        starts = master.poll(now)
        assert master.started
        assert master.started_at == now
        for message, __ in starts:
            assert isinstance(message, Start)
            replies = joiner.on_message(message, now + 0.02)
            assert joiner.started
            assert joiner.started_at == now + 0.02
            for reply, __d in replies:
                assert isinstance(reply, StartAck)
                master.on_message(reply, now + 0.04)
        assert master.all_acked

    def test_start_skew_bounded_by_one_way(self):
        master, joiner = make_pair()
        now = 0.0
        exchange(joiner, master, now)
        for message, __ in master.poll(0.1):  # WELCOME pending? no: poll sends START
            joiner.on_message(message, 0.1 + 0.05)
        # the WELCOME went through on_message's reply path in exchange()

    def test_master_retransmits_start_until_acked(self):
        master, joiner = make_pair()
        hello = Hello(1, 1, game_digest("pong"), config_digest(SyncConfig()))
        master.on_message(hello, 0.0)
        first = master.poll(0.1)
        assert any(isinstance(m, Start) for m, __ in first)
        # No ack arrives; the next poll after RETRY_INTERVAL re-sends START.
        again = master.poll(0.1 + SessionControl.RETRY_INTERVAL)
        assert any(isinstance(m, Start) for m, __ in again)
        # After the ack, no more STARTs.
        master.on_message(StartAck(1, 1), 0.3)
        assert master.poll(1.0) == []

    def test_joiner_retransmits_hello(self):
        __, joiner = make_pair()
        first = joiner.poll(0.0)
        assert any(isinstance(m, Hello) for m, __ in first)
        assert joiner.poll(0.01) == []  # throttled
        later = joiner.poll(SessionControl.RETRY_INTERVAL + 0.01)
        assert any(isinstance(m, Hello) for m, __ in later)

    def test_duplicate_welcome_after_start_does_not_regress(self):
        """Regression: a late duplicate WELCOME froze the session."""
        master, joiner = make_pair()
        welcome = Welcome(0, 1, assigned_site=1, num_sites=2)
        joiner.on_message(welcome, 0.0)
        joiner.on_message(Start(0, 1), 0.1)
        assert joiner.started
        joiner.on_message(welcome, 0.2)  # duplicate arrives late
        assert joiner.started  # must NOT regress to WAITING

    def test_duplicate_start_acks_again(self):
        __, joiner = make_pair()
        joiner.on_message(Welcome(0, 1, 1, 2), 0.0)
        first = joiner.on_message(Start(0, 1), 0.1)
        second = joiner.on_message(Start(0, 1), 0.2)
        assert any(isinstance(m, StartAck) for m, __ in first)
        assert any(isinstance(m, StartAck) for m, __ in second)
        assert joiner.started_at == 0.1  # first START wins


class TestValidation:
    def test_wrong_game_rejected(self):
        master, __ = make_pair()
        bad = Hello(1, 1, game_digest("zelda"), config_digest(SyncConfig()))
        with pytest.raises(SessionError):
            master.on_message(bad, 0.0)

    def test_wrong_config_rejected(self):
        master, __ = make_pair()
        bad = Hello(1, 1, game_digest("pong"), config_digest(SyncConfig(cfps=50)))
        with pytest.raises(SessionError):
            master.on_message(bad, 0.0)

    def test_wrong_session_id_ignored(self):
        master, __ = make_pair()
        stray = Hello(1, 999, game_digest("pong"), config_digest(SyncConfig()))
        assert master.on_message(stray, 0.0) == []

    def test_misassigned_welcome_raises(self):
        __, joiner = make_pair()
        with pytest.raises(SessionError):
            joiner.on_message(Welcome(0, 1, assigned_site=5, num_sites=2), 0.0)

    def test_digests_stable(self):
        assert config_digest(SyncConfig()) == config_digest(SyncConfig())
        assert config_digest(SyncConfig()) != config_digest(SyncConfig(buf_frame=3))
        assert game_digest("pong") != game_digest("pong2")


class TestExpectedSites:
    def test_handshake_subset(self):
        config = SyncConfig()
        addresses = {0: "s0", 1: "s1", 2: "s2"}
        master = SessionControl(
            config, 0, 3, "g", 1, addresses, expected_sites=[0, 1]
        )
        hello = Hello(1, 1, game_digest("g"), config_digest(config))
        master.on_message(hello, 0.0)
        master.poll(0.1)
        assert master.started  # site 2 was not required
