"""Unit tests for the built-in games (brawler, shooter, pong-py, counter)."""

import pytest

from repro.core.inputs import Buttons, pack_buttons
from repro.emulator.games.brawler import (
    ARENA_WIDTH,
    BLOCKING,
    MAX_HEALTH,
    StreetBrawler,
)
from repro.emulator.games.counter import CounterMachine, NondeterministicMachine
from repro.emulator.games.pongpy import PongPy
from repro.emulator.games.shooter import CoopShooter, lfsr_next
from repro.emulator.machine import MachineError, available_games, create_game


def p0(buttons):
    return pack_buttons(0, buttons)


def p1(buttons):
    return pack_buttons(1, buttons)


class TestRegistry:
    def test_builtin_games_listed(self):
        names = available_games()
        for expected in ("pong", "pong-py", "brawler", "shooter", "counter"):
            assert expected in names

    def test_create_unknown_raises(self):
        with pytest.raises(MachineError):
            create_game("tetris")

    def test_create_returns_fresh_instances(self):
        assert create_game("counter") is not create_game("counter")


class TestCounterMachine:
    def test_state_depends_on_input_history(self):
        a, b = CounterMachine(), CounterMachine()
        a.step(1)
        a.step(2)
        b.step(2)
        b.step(1)
        assert a.checksum() != b.checksum()  # order matters

    def test_savestate_roundtrip(self):
        a = CounterMachine()
        for i in range(10):
            a.step(i)
        b = CounterMachine()
        b.load_state(a.save_state())
        assert b.checksum() == a.checksum()
        assert b.frame == 10

    def test_bad_state_rejected(self):
        with pytest.raises(MachineError):
            CounterMachine().load_state(b"x")

    def test_nondeterministic_machine_diverges(self):
        a, b = NondeterministicMachine(), NondeterministicMachine()
        for __ in range(20):
            a.step(0)
            b.step(0)
        assert a.checksum() != b.checksum()


class TestPongPy:
    def test_paddles_move_and_clamp(self):
        game = PongPy()
        for __ in range(100):
            game.step(p0(Buttons.UP) | p1(Buttons.DOWN))
        assert game.paddle_y[0] == 0
        assert game.paddle_y[1] == 40

    def test_ball_bounces_off_walls(self):
        game = PongPy()
        seen_directions = set()
        for __ in range(400):
            game.step(0)
            seen_directions.add(game.vel_y)
        assert seen_directions == {-1, 1}

    def test_idle_players_concede_points(self):
        game = PongPy()
        for __ in range(2000):
            game.step(0)
        assert sum(game.scores) > 0

    def test_defending_paddle_returns_ball(self):
        game = PongPy()
        # Move both paddles toward the ball's row and hold; ball starts at
        # y=24 moving toward the right paddle at y=20..27 -> covered.
        for __ in range(120):
            game.step(0)
            if game.vel_x == -1 and game.ball_x < 32:
                break
        # after a right-paddle contact the ball reversed without a score
        assert game.scores == [0, 0] or max(game.scores) >= 0  # smoke

    def test_savestate_roundtrip_mid_rally(self):
        a = PongPy()
        for frame in range(137):
            a.step(p0(Buttons.UP if frame % 3 else Buttons.DOWN))
        b = PongPy()
        b.load_state(a.save_state())
        for __ in range(50):
            a.step(p1(Buttons.DOWN))
            b.step(p1(Buttons.DOWN))
        assert a.checksum() == b.checksum()


class TestBrawler:
    def test_walk_and_clamp(self):
        game = StreetBrawler()
        for __ in range(400):
            game.step(p0(Buttons.LEFT) | p1(Buttons.RIGHT))
        assert game.fighters[0].x == 0
        assert game.fighters[1].x == ARENA_WIDTH - 1

    def test_facing_tracks_opponent(self):
        game = StreetBrawler()
        assert game.fighters[0].facing == 1
        assert game.fighters[1].facing == -1
        # Walk past each other.
        for __ in range(200):
            game.step(p0(Buttons.RIGHT) | p1(Buttons.LEFT))
        a, b = game.fighters
        assert a.facing == (1 if b.x >= a.x else -1)

    def test_punch_out_of_range_misses(self):
        game = StreetBrawler()
        game.step(p0(Buttons.A))
        for __ in range(20):
            game.step(0)
        assert game.fighters[1].hp == MAX_HEALTH

    def _close_distance(self, game):
        for __ in range(120):
            if abs(game.fighters[0].x - game.fighters[1].x) <= 15:
                break
            game.step(p0(Buttons.RIGHT) | p1(Buttons.LEFT))

    def test_punch_in_range_hits(self):
        game = StreetBrawler()
        self._close_distance(game)
        before = game.fighters[1].hp
        game.step(p0(Buttons.A))
        for __ in range(10):
            game.step(0)
        assert game.fighters[1].hp < before

    def test_block_reduces_damage(self):
        unblocked = StreetBrawler()
        self._close_distance(unblocked)
        unblocked.step(p0(Buttons.A))
        for __ in range(10):
            unblocked.step(0)
        damage_unblocked = MAX_HEALTH - unblocked.fighters[1].hp

        blocked = StreetBrawler()
        self._close_distance(blocked)
        blocked.step(p0(Buttons.A) | p1(Buttons.DOWN))
        for __ in range(10):
            blocked.step(p1(Buttons.DOWN))
        damage_blocked = MAX_HEALTH - blocked.fighters[1].hp
        assert 0 < damage_blocked < damage_unblocked

    def test_block_state_roots_fighter(self):
        game = StreetBrawler()
        x_before = game.fighters[0].x
        game.step(p0(Buttons.DOWN | Buttons.RIGHT))
        assert game.fighters[0].state == BLOCKING
        game.step(p0(Buttons.RIGHT))
        assert game.fighters[0].x == x_before

    def test_round_timeout_awards_round(self):
        game = StreetBrawler()
        self._close_distance(game)
        game.step(p0(Buttons.A))
        for __ in range(10):
            game.step(0)
        # burn the round timer
        remaining = game.round_timer
        for __ in range(remaining + 2):
            game.step(0)
        assert game.fighters[0].rounds_won == 1
        assert game.round_no == 2
        assert game.fighters[0].hp == MAX_HEALTH  # round reset

    def test_savestate_roundtrip(self):
        a = StreetBrawler()
        for frame in range(200):
            a.step(p0(Buttons.RIGHT | (Buttons.A if frame % 5 == 0 else 0)) | p1(Buttons.LEFT))
        b = StreetBrawler()
        b.load_state(a.save_state())
        for __ in range(50):
            a.step(p0(Buttons.A))
            b.step(p0(Buttons.A))
        assert a.checksum() == b.checksum()

    def test_bad_state_rejected(self):
        with pytest.raises(MachineError):
            StreetBrawler().load_state(b"short")

    def test_render_text_smoke(self):
        assert "hp" in StreetBrawler().render_text()


class TestShooter:
    def test_lfsr_period_is_long(self):
        value = 0xACE1
        seen = set()
        for __ in range(5000):
            value = lfsr_next(value)
            seen.add(value)
        assert len(seen) > 4000
        assert 0 not in seen

    def test_ships_move_and_clamp(self):
        game = CoopShooter()
        for __ in range(100):
            game.step(p0(Buttons.LEFT) | p1(Buttons.RIGHT))
        assert game.ships[0].x == 0
        assert game.ships[1].x == 63

    def test_firing_respects_cooldown(self):
        game = CoopShooter()
        game.step(p0(Buttons.A))
        game.step(p0(Buttons.A))
        assert len(game.bullets) == 1

    def test_enemies_spawn(self):
        game = CoopShooter()
        for __ in range(120):
            game.step(0)
        assert len(game.enemies) >= 1

    def test_enemies_breach_costs_lives(self):
        game = CoopShooter()
        lives = game.lives
        for __ in range(3000):
            game.step(0)
            if game.lives < lives:
                break
        assert game.lives < lives

    def test_shooting_scores(self):
        game = CoopShooter()
        for frame in range(3000):
            # Patrol opposite halves while firing — stationary ships only
            # hit enemies that happen to spawn in their column.
            d0 = Buttons.LEFT if (frame // 40) % 2 else Buttons.RIGHT
            d1 = Buttons.RIGHT if (frame // 40) % 2 else Buttons.LEFT
            game.step(p0(Buttons.A | d0) | p1(Buttons.A | d1))
            if game.score > 0:
                break
        assert game.score > 0

    def test_game_over_freezes(self):
        game = CoopShooter()
        for __ in range(20000):
            game.step(0)
            if game.game_over:
                break
        assert game.game_over
        frame = game.frame
        game.step(0xFFFF)
        assert game.frame == frame + 1  # frame counter still ticks
        # state payload (minus frame counter) is frozen: one more idle step
        # from the same state yields the same non-frame fields; compare via
        # save_state with the frame bytes stripped.
        assert game.save_state()[4:] == CoopShooter_state_tail(game)

    def test_savestate_roundtrip_with_entities(self):
        a = CoopShooter()
        for frame in range(300):
            a.step(p0(Buttons.A | Buttons.LEFT) | p1(Buttons.A))
        b = CoopShooter()
        b.load_state(a.save_state())
        assert b.checksum() == a.checksum()
        for __ in range(100):
            a.step(p0(Buttons.A))
            b.step(p0(Buttons.A))
        assert a.checksum() == b.checksum()

    def test_trailing_bytes_rejected(self):
        game = CoopShooter()
        with pytest.raises(MachineError):
            game.load_state(game.save_state() + b"\x00\x00")


def CoopShooter_state_tail(game):
    return game.save_state()[4:]
