"""The sans-IO engine driven directly: events in, effects out.

A tiny deterministic mesh stands in for a driver: it keeps one virtual
clock, routes ``Send`` effects between engines with a fixed link latency,
and advances time to whichever comes first — the next in-flight datagram
or the earliest ``next_deadline()``.  No sockets, no threads, no sleeping:
these tests exercise exactly the surface the three real drivers use.

Covered here (and nowhere else at this level):

* the session handshake through the engine's RETRY timer — START is
  retransmitted until START_ACK, and digest-mismatched joiners are
  rejected rather than admitted;
* lockstep delivery gating under simulated loss — observers never gate,
  and a frame is not delivered until every gating site's input arrives.
"""

import heapq

from repro.core.config import SyncConfig
from repro.core.engine import (
    DatagramReceived,
    Finished,
    InputSampled,
    Present,
    Send,
    SiteEngine,
    SitePeer,
    SiteRuntime,
    Stall,
)
from repro.core.inputs import IdleSource, InputAssignment, PadSource, RandomSource
from repro.core.messages import (
    Hello,
    Ping,
    Start,
    Sync,
    Welcome,
    decode_all,
    uvarint_len,
)
from repro.core.session import config_digest, game_digest
from repro.core.wire_v1 import encode_v1
from repro.emulator.machine import create_game


def contains(payload, message_type):
    """True if the datagram carries a message of ``message_type``.

    The outbox coalesces co-due messages into Batch containers, so a
    payload is a *list* of messages as far as filtering is concerned.
    """
    return any(isinstance(m, message_type) for m in decode_all(payload))


class EngineMesh:
    """Routes effects between engines under one deterministic virtual clock."""

    def __init__(self, engines, latency=0.005, loss=None):
        self.now = 0.0
        self.latency = latency
        #: ``loss(src_addr, dst_addr, payload, now) -> bool`` — True drops.
        self.loss = loss if loss is not None else (lambda *a: False)
        self.engines = {}
        self.effects = {}
        self._inflight = []
        self._seq = 0
        for engine in engines:
            address = engine.runtime.address_of[engine.runtime.site_no]
            self.engines[address] = engine
            self.effects[address] = []

    # ------------------------------------------------------------------
    def start(self):
        for address, engine in self.engines.items():
            self._absorb(address, engine.start(self.now))

    def _absorb(self, address, effects):
        self.effects[address].extend(effects)
        for effect in effects:
            if not isinstance(effect, Send):
                continue
            if effect.destination not in self.engines:
                continue
            if self.loss(address, effect.destination, effect.payload, self.now):
                continue
            self._seq += 1
            heapq.heappush(
                self._inflight,
                (self.now + self.latency, self._seq, effect.destination, effect.payload),
            )

    def _next_time(self):
        times = [self._inflight[0][0]] if self._inflight else []
        for engine in self.engines.values():
            deadline = engine.next_deadline()
            if deadline is not None:
                times.append(deadline)
        return min(times) if times else None

    def _step(self):
        self.now = max(self.now, self._next_time())
        while self._inflight and self._inflight[0][0] <= self.now:
            _, _, destination, payload = heapq.heappop(self._inflight)
            engine = self.engines[destination]
            self._absorb(
                destination,
                engine.handle(DatagramReceived(payload, self.now, self.now)),
            )
        for address, engine in self.engines.items():
            deadline = engine.next_deadline()
            if deadline is not None and deadline <= self.now:
                self._absorb(address, engine.poll(self.now))

    # ------------------------------------------------------------------
    def run(self, horizon=60.0):
        """Drive every engine to Finished (or fail at the horizon)."""
        while not all(engine.done for engine in self.engines.values()):
            next_time = self._next_time()
            assert next_time is not None, "mesh idle with engines unfinished"
            assert next_time <= horizon, f"mesh passed horizon at t={next_time:.3f}"
            self._step()

    def run_until(self, instant):
        """Advance the virtual clock to ``instant`` and stop there."""
        while True:
            next_time = self._next_time()
            if next_time is None or next_time > instant:
                self.now = max(self.now, instant)
                return
            self._step()

    # ------------------------------------------------------------------
    def presents(self, address):
        return [e for e in self.effects[address] if isinstance(e, Present)]

    def stalls(self, address):
        return [e for e in self.effects[address] if isinstance(e, Stall)]

    def sent(self, address, message_type):
        return [
            e
            for e in self.effects[address]
            if isinstance(e, Send) and contains(e.payload, message_type)
        ]


def build_engines(
    num_sites=2,
    frames=40,
    assignment=None,
    configs=None,
    game_ids=None,
    linger=5.0,
    seed=5,
):
    """One engine per site, addressed ``site0..siteN`` for the mesh."""
    if assignment is None:
        assignment = InputAssignment.standard(num_sites)
    if configs is None:
        # slice_delay=0 keeps the flush schedule free of jitter draws.
        configs = [SyncConfig(slice_delay=0.0)] * num_sites
    peers = [SitePeer(site, f"site{site}") for site in range(num_sites)]
    engines = []
    for site in range(num_sites):
        source = (
            PadSource(RandomSource(seed + site), player=site)
            if assignment.mask(site)
            else IdleSource()
        )
        runtime = SiteRuntime(
            config=configs[site],
            site_no=site,
            assignment=assignment,
            machine=create_game("counter"),
            source=source,
            peers=peers,
            game_id=game_ids[site] if game_ids else "counter",
        )
        engines.append(SiteEngine(runtime, frames, linger=linger))
    return engines


class TestEngineSession:
    def test_two_site_session_completes_and_converges(self):
        engines = build_engines(frames=40)
        mesh = EngineMesh(engines)
        mesh.start()
        mesh.run()
        for site, engine in enumerate(engines):
            assert engine.done and engine.frames_complete
            presents = mesh.presents(f"site{site}")
            assert [p.frame for p in presents] == list(range(40))
            assert any(
                isinstance(e, Finished) for e in mesh.effects[f"site{site}"]
            )
        traces = [engine.runtime.trace for engine in engines]
        assert list(traces[0].checksums) == list(traces[1].checksums)

    def test_pushed_input_overrides_source(self):
        engines = build_engines(frames=30)
        lag = engines[0].runtime.config.buf_frame
        for frame in range(30):
            assert engines[0].handle(InputSampled(frame, 0x01)) == []
        mesh = EngineMesh(engines)
        mesh.start()
        mesh.run()
        # Site 0's pushed word lands ``lag`` frames later at both replicas.
        for present in mesh.presents("site1"):
            if present.frame >= lag:
                assert present.merged_input & 0x01


class TestSessionControlThroughEngine:
    def test_master_retransmits_start_until_acked(self):
        engines = build_engines(frames=20)
        dropped = []

        def loss(src, dst, payload, now):
            if src == "site0" and len(dropped) < 3 and contains(payload, Start):
                dropped.append(now)
                return True
            return False

        mesh = EngineMesh(engines, loss=loss)
        mesh.start()
        mesh.run()
        assert len(dropped) == 3
        # The RETRY timer kept re-sending START until the ack arrived...
        assert len(mesh.sent("site0", Start)) >= 4
        assert engines[0].runtime.session.all_acked
        # ...and the session still ran to completion on both sites.
        for site in range(2):
            assert len(mesh.presents(f"site{site}")) == 20

    def _assert_handshake_refused(self, mesh, engines, error_match):
        """A mismatched joiner is refused observably, never crashes the
        master: no WELCOME, a traced ``session_reject``, and both sides
        time out their handshakes cleanly."""
        mesh.start()
        mesh.run(horizon=2.0)
        master = engines[0].runtime.session
        assert not master.all_joined
        assert not master.started
        assert mesh.sent("site0", Welcome) == []
        assert all(e.termination == "handshake-timeout" for e in engines)
        rejects = [
            r for r in engines[0].runtime.events if r.kind == "session_reject"
        ]
        assert rejects and error_match in rejects[0].detail["error"]

    def test_joiner_with_wrong_game_image_rejected(self):
        configs = [SyncConfig(slice_delay=0.0, handshake_timeout_s=0.5)] * 2
        engines = build_engines(
            frames=10, configs=configs, game_ids=["counter", "pong"]
        )
        self._assert_handshake_refused(
            EngineMesh(engines), engines, "different game image"
        )

    def test_joiner_with_wrong_config_rejected(self):
        configs = [
            SyncConfig(slice_delay=0.0, buf_frame=6, handshake_timeout_s=0.5),
            SyncConfig(slice_delay=0.0, buf_frame=3, handshake_timeout_s=0.5),
        ]
        engines = build_engines(frames=10, configs=configs)
        self._assert_handshake_refused(
            EngineMesh(engines), engines, "incompatible SyncConfig"
        )


class TestDeliveryGatingUnderLoss:
    def test_observer_sync_loss_never_stalls_players(self):
        assignment = InputAssignment.with_observers(2, 1)
        engines = build_engines(
            num_sites=3, frames=40, assignment=assignment, linger=0.3
        )

        def loss(src, dst, payload, now):
            # The observer's sync traffic (acks only; it controls no bits)
            # never reaches anyone.
            return src == "site2" and contains(payload, Sync)

        mesh = EngineMesh(engines, loss=loss)
        mesh.start()
        mesh.run()
        for site in (0, 1):
            assert len(mesh.presents(f"site{site}")) == 40
        for address in mesh.effects:
            for stall in mesh.stalls(address):
                assert 2 not in stall.waiting_on

    def test_delivery_blocks_until_gating_input_arrives(self):
        assignment = InputAssignment.with_observers(2, 1)
        engines = build_engines(
            num_sites=3, frames=120, assignment=assignment, linger=0.3
        )
        outage = (1.0, 1.5)

        def loss(src, dst, payload, now):
            return (
                src == "site1"
                and dst == "site0"
                and outage[0] <= now < outage[1]
                and contains(payload, Sync)
            )

        mesh = EngineMesh(engines, loss=loss)
        mesh.start()
        mesh.run_until(outage[1])

        stalls = [s for s in mesh.stalls("site0") if 1 in s.waiting_on]
        assert stalls, "site 0 should stall on site 1 during the outage"
        # Delivery is gated: site 0 froze at the stalled frame instead of
        # reaching the ~90 frames an unimpeded run sees by t=1.5.
        frame_at_heal = engines[0].runtime.frame
        assert frame_at_heal <= stalls[-1].frame
        assert frame_at_heal < 80

        # Once the link heals, site 1's periodic flush retransmits the whole
        # unacked window and every site finishes with identical traces.
        mesh.run()
        for site in (0, 1):
            assert len(mesh.presents(f"site{site}")) == 120
        traces = [engine.runtime.trace for engine in engines]
        assert list(traces[0].checksums) == list(traces[1].checksums)
        # Observers never appear as a gating site, at any replica.
        for address in mesh.effects:
            for stall in mesh.stalls(address):
                assert 2 not in stall.waiting_on


class TestSendPathCoalescing:
    """The outbox merges co-due messages per peer into one BATCH datagram."""

    def test_session_coalesces_into_batches(self):
        engines = build_engines(frames=40)
        mesh = EngineMesh(engines)
        mesh.start()
        mesh.run()
        # Every datagram that left any engine is valid v2 and at least one
        # carried 2+ messages (a SYNC riding with a PING/PONG or control).
        batched = 0
        for address in mesh.effects:
            for effect in mesh.effects[address]:
                if isinstance(effect, Send):
                    messages = decode_all(effect.payload)
                    assert messages, "datagram decoded to nothing"
                    batched += len(messages) > 1
        assert batched > 0
        for engine in engines:
            assert engine.runtime.metrics.net_batch_coalesced.value > 0
        # Coalescing must not cost determinism.
        traces = [engine.runtime.trace for engine in engines]
        assert list(traces[0].checksums) == list(traces[1].checksums)

    def test_wire_bytes_counted_at_both_ends(self):
        engines = build_engines(frames=20)
        mesh = EngineMesh(engines)
        mesh.start()
        mesh.run()
        for site, engine in enumerate(engines):
            metrics = engine.runtime.metrics
            sent = sum(
                len(e.payload)
                for e in mesh.effects[f"site{site}"]
                if isinstance(e, Send)
            )
            assert metrics.net_bytes_tx.value == sent
            # The lossless mesh delivers everything, and everything decodes.
            assert metrics.net_bytes_rx.value == metrics.bytes_received.value
            assert metrics.net_decode_errors.value == 0


class TestBandwidthBudget:
    """SyncConfig.bandwidth_budget_bps: deterministic lowest-priority drop."""

    def _engine(self, bps):
        configs = [
            SyncConfig(slice_delay=0.0, bandwidth_budget_bps=bps)
        ] * 2
        return build_engines(frames=10, configs=configs)[0]

    @staticmethod
    def _entry_sizes(messages):
        return [
            5 + uvarint_len(len(m._encode_body())) + len(m._encode_body())
            for m in messages
        ]

    def test_drop_order_sheds_pings_then_acks_then_inputs(self):
        engine = self._engine(bps=1)  # forces every non-control drop
        start = Start(0, 1)
        sync_inputs = Sync(0, 1, acks=[5, 5], first_frame=6, inputs=[1, 2])
        pure_ack = Sync(0, 1, acks=[5, 5], first_frame=7)
        ping = Ping(0, 1, seq=0, timestamp_us=0)
        queue = [ping, sync_inputs, start, pure_ack]
        entries = [(m, "site1", m._encode_body()) for m in queue]
        kept = engine._apply_budget(entries, now=0.0)
        # Control is never dropped, everything else is.
        assert [m for m, _, _ in kept] == [start]
        assert engine.runtime.metrics.net_budget_deferrals.value == 3

    def test_partial_budget_keeps_input_syncs(self):
        start = Start(0, 1)
        sync_inputs = Sync(0, 1, acks=[5, 5], first_frame=6, inputs=[1, 2])
        pure_ack = Sync(0, 1, acks=[5, 5], first_frame=7)
        ping = Ping(0, 1, seq=0, timestamp_us=0)
        queue = [ping, sync_inputs, start, pure_ack]
        sizes = self._entry_sizes(queue)
        # Enough for everything but the ping and the pure ack.
        bps = sizes[2] + sizes[1] + min(sizes[0], sizes[3]) - 1
        engine = self._engine(bps=bps)
        entries = [(m, "site1", m._encode_body()) for m in queue]
        kept = [m for m, _, _ in engine._apply_budget(entries, now=0.0)]
        assert any(m is sync_inputs for m in kept)
        assert any(m is start for m in kept)
        assert not any(m is ping for m in kept)
        assert not any(m is pure_ack for m in kept)

    def test_unbudgeted_config_never_defers(self):
        engines = build_engines(frames=20)
        mesh = EngineMesh(engines)
        mesh.start()
        mesh.run()
        for engine in engines:
            assert engine.runtime.metrics.net_budget_deferrals.value == 0

    def test_starved_budget_defers_but_stays_consistent(self):
        """A budget below the sync floor slows the session down without
        desyncing it: dropped windows are rebuilt by the next flush."""
        configs = [
            SyncConfig(slice_delay=0.0, bandwidth_budget_bps=60)
        ] * 2
        engines = build_engines(frames=20, configs=configs)
        mesh = EngineMesh(engines)
        mesh.start()
        mesh.run()
        assert sum(
            e.runtime.metrics.net_budget_deferrals.value for e in engines
        ) > 0
        for site in range(2):
            assert len(mesh.presents(f"site{site}")) == 20
        traces = [engine.runtime.trace for engine in engines]
        assert list(traces[0].checksums) == list(traces[1].checksums)


class TestLegacyPeerRejection:
    """A v1 site can never join (or desync) a v2 session."""

    def _legacy_hello(self, runtime):
        # Digest-valid HELLO: proves the rejection is the codec version,
        # not a config mismatch.
        return encode_v1(
            Hello(
                sender_site=1,
                session_id=runtime.session_id,
                game_id=game_digest("counter"),
                config_digest=config_digest(runtime.config),
            )
        )

    def test_v1_hello_rejected_observably(self):
        configs = [SyncConfig(slice_delay=0.0, handshake_timeout_s=0.5)] * 2
        engines = build_engines(frames=10, configs=configs)
        master = engines[0]
        effects = master.start(0.0)
        raw = self._legacy_hello(master.runtime)
        now = 0.01
        while not master.done and now < 2.0:
            effects += master.handle(DatagramReceived(raw, now, now))
            deadline = master.next_deadline()
            now = max(now + 0.01, deadline if deadline is not None else now)
            effects += master.poll(now)

        # Never welcomed, never crashed, never desynced — the master sat
        # out its handshake window and terminated cleanly.
        assert not any(
            isinstance(e, Send) and contains(e.payload, Welcome)
            for e in effects
        )
        assert not master.runtime.session.all_joined
        assert master.done and master.termination == "handshake-timeout"
        # The rejection is observable: counted and carried in the trace.
        assert master.runtime.metrics.net_decode_errors.value > 0
        errors = [
            r for r in master.runtime.events if r.kind == "decode_error"
        ]
        assert errors
        assert "version 1" in str(errors[0].detail["error"])
