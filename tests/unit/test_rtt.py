"""Unit tests for repro.core.rtt."""

import pytest

from repro.core.config import SyncConfig
from repro.core.rtt import RttEstimator, from_micros, to_micros


class TestMicros:
    def test_roundtrip(self):
        assert from_micros(to_micros(1.234567)) == pytest.approx(1.234567)

    def test_zero(self):
        assert to_micros(0.0) == 0


class TestEstimator:
    def test_initial_value_from_config(self):
        estimator = RttEstimator(SyncConfig(initial_rtt=0.25), 0)
        assert estimator.rtt == 0.25
        assert estimator.one_way == 0.125

    def test_first_sample_adopted(self):
        estimator = RttEstimator(SyncConfig(), 0)
        ping = estimator.make_ping(now=1.0)
        pong = RttEstimator.make_pong(ping, site_no=1)
        estimator.on_pong(pong, now=1.08)
        assert estimator.rtt == pytest.approx(0.08)
        assert estimator.samples == 1

    def test_ewma_smoothing(self):
        config = SyncConfig(rtt_alpha=0.125)
        estimator = RttEstimator(config, 0)
        ping = estimator.make_ping(0.0)
        estimator.on_pong(RttEstimator.make_pong(ping, 1), 0.100)
        ping = estimator.make_ping(1.0)
        estimator.on_pong(RttEstimator.make_pong(ping, 1), 1.200)
        assert estimator.rtt == pytest.approx(0.875 * 0.100 + 0.125 * 0.200)

    def test_negative_sample_rejected(self):
        estimator = RttEstimator(SyncConfig(), 0)
        ping = estimator.make_ping(5.0)
        assert estimator.on_pong(RttEstimator.make_pong(ping, 1), 4.0) is None
        assert estimator.samples == 0

    def test_ping_sequence_increments(self):
        estimator = RttEstimator(SyncConfig(), 0)
        assert estimator.make_ping(0.0).seq == 0
        assert estimator.make_ping(0.1).seq == 1

    def test_pong_echoes_timestamp(self):
        estimator = RttEstimator(SyncConfig(), 0, session_id=4)
        ping = estimator.make_ping(2.5)
        pong = RttEstimator.make_pong(ping, site_no=1)
        assert pong.echo_timestamp_us == ping.timestamp_us
        assert pong.seq == ping.seq
        assert pong.session_id == 4
        assert pong.sender_site == 1
