"""Unit tests for frame-latency attribution (repro.obs.timeline + ClockAlign).

Covers the three properties the observability PR's acceptance hangs on:

* clock-offset convergence under asymmetric jitter (the NTP-style filter
  must keep the estimate within a fraction of the one-way delay);
* span reassembly under loss, duplication and reordering of stamps
  (records degrade to partial/estimated attribution, never corrupt);
* the Chrome trace-event export round-trips through JSON with the exact
  structure Perfetto expects.
"""

import json

from repro.core.rtt import ClockAlign
from repro.obs.timeline import (
    P_CAPTURE,
    P_FLUSH,
    P_PRESENTED,
    FrameTimeline,
    TimelineCollector,
    chrome_trace,
)

TPF = 1 / 60.0


class TestClockAlign:
    def test_symmetric_exchanges_recover_offset(self):
        align = ClockAlign()
        true_offset = 0.250  # peer clock is 250 ms ahead
        one_way = 0.030
        for i in range(20):
            t1 = i * 0.5
            t2 = t1 + one_way + true_offset
            t4 = t1 + 2 * one_way
            align.on_sample(t1, t2, t4)
        assert align.aligned
        assert abs(align.offset - true_offset) < 1e-9

    def test_asymmetric_jitter_filtered(self):
        """Queue spikes in one direction bias raw θ by half the spike;
        the min-delay filter must reject them.  Error stays under 10% of
        the one-way delay even when most exchanges are jittered."""
        align = ClockAlign()
        true_offset = -0.120
        one_way = 0.060
        # Deterministic jitter pattern: every 3rd exchange clean, the rest
        # delayed 5-45 ms in the *forward* direction only.
        for i in range(60):
            spike = 0.0 if i % 3 == 0 else 0.005 * (1 + (i * 7) % 9)
            t1 = i * 0.5
            t2 = t1 + one_way + spike + true_offset
            t4 = t1 + 2 * one_way + spike
            align.on_sample(t1, t2, t4)
        assert align.aligned
        assert align.rejected > 0
        assert abs(align.offset - true_offset) < 0.1 * one_way

    def test_to_local_inverts_offset(self):
        align = ClockAlign()
        align.on_sample(0.0, 0.030 + 1.5, 0.060)
        assert abs(align.to_local(2.0) - (2.0 - 1.5)) < 1e-9


def drive_frame(collector, frame, base, stamp=True):
    """One well-behaved frame through all hooks; returns the record."""
    if stamp:
        collector.on_stamp(1, frame, base + 0.002, base)
    collector.on_remote_frames(1, frame, frame, base + 0.060, base + 0.0605)
    collector.on_gate_open(frame, base + 0.061)
    return collector.on_present(frame, base + 0.062)


class TestSpanReassembly:
    def test_complete_record_telescopes_exactly(self):
        collector = TimelineCollector(TPF)
        record = drive_frame(collector, 0, 10.0)
        assert record.complete
        stages = record.stages()
        assert set(stages) == {"encode", "wire", "decode", "gate", "step", "present"}
        # Exact telescoping: the stage sum IS the end-to-end latency.
        assert sum(stages.values()) == record.end_to_end

    def test_lost_stamp_degrades_to_partial(self):
        collector = TimelineCollector(TPF)
        record = drive_frame(collector, 0, 10.0, stamp=False)
        assert not record.complete
        assert record.points[P_CAPTURE] is None
        assert record.points[P_FLUSH] is None
        # Local spans still known.
        assert "gate" in record.stages() and "step" in record.stages()

    def test_later_stamp_backdates_estimated(self):
        """A window's stamp names its newest frame; earlier frames bind it
        with capture back-dated at the frame cadence and are marked
        estimated."""
        collector = TimelineCollector(TPF)
        # Stamp for frame 5 only; frames 4 and 5 both covered by its window.
        collector.on_stamp(1, 5, 10.002, 10.0)
        collector.on_remote_frames(1, 4, 5, 10.060, 10.0605)
        for frame in (4, 5):
            collector.on_gate_open(frame, 10.061)
        rec4 = collector.on_present(4, 10.062)
        rec5 = collector.on_present(5, 10.078)
        assert rec4.estimated and not rec5.estimated
        assert rec4.points[P_CAPTURE] == 10.0 - TPF
        assert rec5.points[P_CAPTURE] == 10.0

    def test_duplicate_stamp_keeps_first(self):
        collector = TimelineCollector(TPF)
        collector.on_stamp(1, 0, 10.002, 10.0)
        collector.on_stamp(1, 0, 99.0, 98.0)  # retransmit, much later clock
        record = drive_frame(collector, 0, 10.0)
        assert record.points[P_FLUSH] == 10.002

    def test_reordered_stamps_bind_lowest_covering_frame(self):
        collector = TimelineCollector(TPF)
        # Stamps arrive out of order: frame 3's before frame 1's.
        collector.on_stamp(1, 3, 10.050, 10.048)
        collector.on_stamp(1, 1, 10.010, 10.008)
        collector.on_remote_frames(1, 1, 3, 10.060, 10.0605)
        collector.on_gate_open(1, 10.061)
        record = collector.on_present(1, 10.062)
        # Frame 1 binds its own stamp, not frame 3's.
        assert record.points[P_FLUSH] == 10.010
        assert not record.estimated

    def test_duplicate_coverage_keeps_first_arrival(self):
        collector = TimelineCollector(TPF)
        collector.on_remote_frames(1, 0, 0, 10.060, 10.0605)
        collector.on_remote_frames(1, 0, 0, 10.090, 10.0905)  # dup datagram
        collector.on_gate_open(0, 10.061)
        record = collector.on_present(0, 10.062)
        assert record.points[2] == 10.060

    def test_stores_stay_bounded_under_flood(self):
        collector = TimelineCollector(TPF)
        for frame in range(10_000):
            collector.on_stamp(1, frame, frame * 1.0, frame * 1.0)
        assert len(collector._stamp_frames[1]) <= collector._STAMP_HISTORY
        assert len(collector._stamps[1]) <= collector._STAMP_HISTORY

    def test_present_prunes_stale_stamps(self):
        collector = TimelineCollector(TPF)
        for frame in range(100):
            collector.on_stamp(1, frame, float(frame), float(frame))
        # Pruning is amortized: drive enough presents to cross the sweep.
        for frame in range(65):
            drive_frame(collector, frame, 10.0 + frame * TPF, stamp=False)
        assert min(collector._stamp_frames[1]) > 60

    def test_fresh_accumulates_until_drained(self):
        collector = TimelineCollector(TPF)
        for frame in range(5):
            drive_frame(collector, frame, 10.0 + frame * TPF)
        assert len(collector.fresh) == 5
        assert collector.fresh[0] is collector.ring[0]
        collector.fresh.clear()
        assert len(collector.ring) == 5  # the flight recorder keeps them


class TestChromeTrace:
    def golden_collector(self):
        collector = TimelineCollector(TPF)
        drive_frame(collector, 0, 10.0)
        return collector

    def test_golden_roundtrip(self):
        trace = chrome_trace({0: self.golden_collector()}, session_id=3)
        parsed = json.loads(json.dumps(trace))
        assert parsed["displayTimeUnit"] == "ms"
        events = parsed["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert {m["name"] for m in metadata} == {"process_name", "thread_name"}
        spans = [e for e in events if e["ph"] == "X"]
        assert [s["name"] for s in spans] == [
            "encode", "wire", "decode", "gate", "step", "present",
        ]
        for span in spans:
            assert span["pid"] == 3 and span["tid"] == 0
            assert isinstance(span["ts"], (int, float))
            assert span["dur"] >= 0
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == 1 and instants[0]["name"] == "capture"
        # Spans tile the timeline: each begins where the previous ended.
        for before, after in zip(spans, spans[1:]):
            assert abs(before["ts"] + before["dur"] - after["ts"]) < 1e-6

    def test_shift_moves_events_onto_common_timebase(self):
        plain = chrome_trace({0: self.golden_collector()})
        shifted = chrome_trace({0: self.golden_collector()}, shifts={0: 0.5})
        ts_plain = [e["ts"] for e in plain["traceEvents"] if e["ph"] == "X"]
        ts_shifted = [e["ts"] for e in shifted["traceEvents"] if e["ph"] == "X"]
        for a, b in zip(ts_plain, ts_shifted):
            assert abs(b - a - 500_000) < 1e-3  # +0.5 s in microseconds

    def test_negative_span_clamped(self):
        # A misaligned clock can put flush after arrival; the export must
        # clamp the wire span to zero rather than emit a negative dur.
        record = FrameTimeline(
            0, [10.0, 10.070, 10.060, 10.0605, 10.061, 10.062, 10.062]
        )
        trace = chrome_trace({0: type("C", (), {"ring": [record]})()})
        wire = [
            e for e in trace["traceEvents"] if e.get("name") == "wire"
        ][0]
        assert wire["dur"] == 0.0
