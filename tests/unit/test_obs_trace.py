"""Unit: the protocol trace ring and the FrameTrace row round-trip."""

import pytest

from repro.core.replay import ReplayError, movie_from_trace
from repro.metrics.recorder import FrameTrace
from repro.obs.trace import EventTrace, TraceRecord


class TestTraceRecord:
    def test_row_round_trip(self):
        record = TraceRecord("tx", 1.5, 42, {"msg": "Sync", "peer": 1})
        row = record.to_row()
        assert row == {"kind": "tx", "t": 1.5, "frame": 42, "msg": "Sync", "peer": 1}
        back = TraceRecord.from_row(row)
        assert back == record


class TestEventTrace:
    def test_ring_is_bounded_and_counts_drops(self):
        trace = EventTrace(capacity=4)
        for i in range(10):
            trace.emit("timer", float(i), i, timer="send")
        assert len(trace) == 4
        assert trace.dropped == 6
        assert [r.frame for r in trace] == [6, 7, 8, 9]

    def test_rows_last_n(self):
        trace = EventTrace()
        for i in range(5):
            trace.emit("phase", float(i), i)
        assert [r["frame"] for r in trace.rows(last_n=2)] == [3, 4]

    def test_jsonl_round_trip(self):
        trace = EventTrace()
        trace.emit("rx", 0.1, 3, msg="Sync", first=0, last=3, ack=2)
        trace.emit("stall", 0.2, 4, waiting_on=[1])
        text = trace.to_jsonl()
        assert len(text.splitlines()) == 2
        back = EventTrace.from_jsonl(text)
        assert back.rows() == trace.rows()


def make_trace(frames=5, first_frame=0):
    trace = FrameTrace(0, first_frame=first_frame)
    for i in range(frames):
        trace.record_begin(i * 0.016)
        trace.record_frame(i % 4, 1000 + i, 0.001 * i, 0.0, lag=2)
    return trace


class TestFrameTraceRows:
    def test_round_trip_preserves_everything(self):
        trace = make_trace()
        back = FrameTrace.from_rows(0, trace.to_rows())
        assert back.first_frame == trace.first_frame
        assert back.inputs == trace.inputs
        assert back.checksums == trace.checksums
        assert back.sync_stall == trace.sync_stall
        assert back.lags == trace.lags
        assert back.begin_times == trace.begin_times

    def test_begun_but_uncommitted_frame_yields_partial_row(self):
        trace = make_trace(frames=2)
        trace.record_begin(0.5)  # frame 2 began, never committed
        rows = trace.to_rows()
        assert len(rows) == 3
        assert rows[-1] == {"frame": 2, "begin": 0.5}
        back = FrameTrace.from_rows(0, rows)
        assert back.frames == 2
        assert len(back.begin_times) == 3

    def test_last_n_keeps_most_recent_rows(self):
        rows = make_trace(frames=6).to_rows(last_n=2)
        assert [r["frame"] for r in rows] == [4, 5]
        back = FrameTrace.from_rows(0, rows)
        assert back.first_frame == 4

    def test_non_contiguous_rows_rejected(self):
        rows = make_trace().to_rows()
        del rows[2]
        with pytest.raises(ValueError, match="not contiguous"):
            FrameTrace.from_rows(0, rows)

    def test_late_joiner_rows_keep_absolute_frames(self):
        trace = make_trace(frames=3, first_frame=100)
        rows = trace.to_rows()
        assert [r["frame"] for r in rows] == [100, 101, 102]
        assert FrameTrace.from_rows(1, rows).first_frame == 100


class TestMovieFromTrace:
    def test_movie_checkpoints_come_from_the_trace(self):
        trace = make_trace(frames=10)
        movie = movie_from_trace(trace, game="counter", checkpoint_interval=4)
        assert movie.inputs == trace.inputs
        assert movie.checkpoints[0] == trace.checksums[0]
        assert movie.checkpoints[9] == trace.checksums[-1]

    def test_late_joiner_trace_rejected(self):
        trace = make_trace(frames=3, first_frame=50)
        with pytest.raises(ReplayError, match="late joiner"):
            movie_from_trace(trace, game="counter")
