"""Unit tests for repro.metrics.stats (the paper's footnote-10/11 metrics)."""

import pytest

from repro.metrics.stats import (
    absolute_average,
    mean,
    mean_abs_deviation,
    percentile,
    summarize,
)


class TestMean:
    def test_simple(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_single(self):
        assert mean([5.0]) == 5.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])


class TestMeanAbsDeviation:
    """Footnote 10: (|x1 − x̄| + … + |xn − x̄|) / n."""

    def test_constant_series_is_zero(self):
        assert mean_abs_deviation([4.0] * 10) == 0.0

    def test_known_value(self):
        # mean = 2; deviations 1, 0, 1 -> 2/3
        assert mean_abs_deviation([1.0, 2.0, 3.0]) == pytest.approx(2 / 3)

    def test_symmetric(self):
        assert mean_abs_deviation([-5.0, 5.0]) == 5.0


class TestAbsoluteAverage:
    """Footnote 11: (|x1| + … + |xn|) / n."""

    def test_all_positive(self):
        assert absolute_average([1.0, 2.0, 3.0]) == 2.0

    def test_mixed_signs(self):
        assert absolute_average([-1.0, 1.0]) == 1.0
        assert absolute_average([-3.0, 0.0, 3.0]) == 2.0

    def test_differs_from_mean_for_oscillation(self):
        """The whole point of footnote 11: oscillating offsets don't cancel."""
        series = [-0.01, 0.01] * 50
        assert abs(mean(series)) < 1e-12
        assert absolute_average(series) == pytest.approx(0.01)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            absolute_average([])


class TestPercentile:
    def test_median(self):
        assert percentile([1.0, 2.0, 3.0], 50) == 2.0

    def test_endpoints(self):
        data = [3.0, 1.0, 2.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 3.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25) == 2.5

    def test_single_element(self):
        assert percentile([7.0], 99) == 7.0

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_empty(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestSummarize:
    def test_fields(self):
        summary = summarize([0.016, 0.017, 0.018])
        assert summary.count == 3
        assert summary.mean == pytest.approx(0.017)
        assert summary.minimum == 0.016
        assert summary.maximum == 0.018

    def test_str_formats_milliseconds(self):
        text = str(summarize([0.016, 0.018]))
        assert "17.00ms" in text
