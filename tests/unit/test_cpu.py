"""Unit tests for the RC-16 CPU, via hand-assembled snippets."""

import pytest

from repro.emulator.assembler import assemble
from repro.emulator.cpu import Cpu, CpuFault, INITIAL_SP
from repro.emulator.memory import Memory


def run(source: str, max_cycles: int = 10_000) -> Cpu:
    """Assemble at 0x0100, run until HALT/YIELD/budget, return the CPU."""
    program = assemble(".org 0x0100\n" + source)
    memory = Memory()
    memory.load(program.origin, program.code)
    cpu = Cpu(memory)
    cpu.reset(program.entry)
    cpu.run_frame(max_cycles)
    return cpu


class TestDataMovement:
    def test_ldi(self):
        cpu = run("LDI r0, 0x1234\nHALT")
        assert cpu.regs[0] == 0x1234

    def test_mov(self):
        cpu = run("LDI r1, 7\nMOV r2, r1\nHALT")
        assert cpu.regs[2] == 7

    def test_store_load_word(self):
        cpu = run("LDI r0, 0xBEEF\nLDI r1, 0x2000\nST [r1+0], r0\nLD r2, [r1+0]\nHALT")
        assert cpu.regs[2] == 0xBEEF
        assert cpu.memory.read_word(0x2000) == 0xBEEF

    def test_store_load_byte(self):
        cpu = run("LDI r0, 0x1FF\nLDI r1, 0x2000\nSTB [r1+0], r0\nLDB r2, [r1+0]\nHALT")
        assert cpu.regs[2] == 0xFF

    def test_indexed_addressing(self):
        cpu = run("LDI r0, 42\nLDI r1, 0x2000\nST [r1+6], r0\nLD r2, [r1+6]\nHALT")
        assert cpu.memory.read_word(0x2006) == 42
        assert cpu.regs[2] == 42

    def test_negative_offset(self):
        cpu = run("LDI r0, 9\nLDI r1, 0x2004\nST [r1-4], r0\nHALT")
        assert cpu.memory.read_word(0x2000) == 9


class TestArithmetic:
    def test_add(self):
        cpu = run("LDI r0, 5\nLDI r1, 3\nADD r0, r1\nHALT")
        assert cpu.regs[0] == 8

    def test_add_wraps(self):
        cpu = run("LDI r0, 0xFFFF\nLDI r1, 1\nADD r0, r1\nHALT")
        assert cpu.regs[0] == 0
        assert cpu.z

    def test_sub_sets_negative_flag(self):
        cpu = run("LDI r0, 3\nLDI r1, 5\nSUB r0, r1\nHALT")
        assert cpu.regs[0] == 0xFFFE
        assert cpu.n

    def test_mul(self):
        cpu = run("LDI r0, 7\nLDI r1, 6\nMUL r0, r1\nHALT")
        assert cpu.regs[0] == 42

    def test_logic_ops(self):
        cpu = run(
            "LDI r0, 0xF0\nLDI r1, 0x0F\nOR r0, r1\n"
            "LDI r2, 0xFF\nLDI r3, 0x0F\nAND r2, r3\n"
            "LDI r4, 0xFF\nLDI r5, 0x0F\nXOR r4, r5\nHALT"
        )
        assert cpu.regs[0] == 0xFF
        assert cpu.regs[2] == 0x0F
        assert cpu.regs[4] == 0xF0

    def test_shifts(self):
        cpu = run("LDI r0, 1\nLDI r1, 4\nSHL r0, r1\nLDI r2, 0x80\nLDI r3, 3\nSHR r2, r3\nHALT")
        assert cpu.regs[0] == 0x10
        assert cpu.regs[2] == 0x10

    def test_addi_negative(self):
        cpu = run("LDI r0, 5\nADDI r0, -2\nHALT")
        assert cpu.regs[0] == 3


class TestControlFlow:
    def test_jmp(self):
        cpu = run("JMP skip\nLDI r0, 1\nskip:\nLDI r1, 2\nHALT")
        assert cpu.regs[0] == 0
        assert cpu.regs[1] == 2

    def test_jz_taken(self):
        cpu = run("LDI r0, 0\nCMPI r0, 0\nJZ yes\nLDI r1, 1\nyes:\nHALT")
        assert cpu.regs[1] == 0

    def test_jnz_taken(self):
        cpu = run("LDI r0, 3\nCMPI r0, 0\nJNZ yes\nLDI r1, 1\nyes:\nHALT")
        assert cpu.regs[1] == 0

    def test_jlt_jge(self):
        cpu = run("LDI r0, 2\nCMPI r0, 5\nJLT less\nLDI r1, 1\nless:\nHALT")
        assert cpu.regs[1] == 0
        cpu = run("LDI r0, 7\nCMPI r0, 5\nJGE geq\nLDI r1, 1\ngeq:\nHALT")
        assert cpu.regs[1] == 0

    def test_jle_jgt(self):
        cpu = run("LDI r0, 5\nCMPI r0, 5\nJLE ok\nLDI r1, 1\nok:\nHALT")
        assert cpu.regs[1] == 0
        cpu = run("LDI r0, 6\nCMPI r0, 5\nJGT ok\nLDI r1, 1\nok:\nHALT")
        assert cpu.regs[1] == 0

    def test_loop_counts(self):
        cpu = run(
            "LDI r0, 0\nLDI r1, 10\n"
            "loop:\nADDI r0, 1\nCMP r0, r1\nJLT loop\nHALT"
        )
        assert cpu.regs[0] == 10

    def test_call_ret(self):
        cpu = run(
            "CALL sub\nLDI r1, 2\nHALT\n"
            "sub:\nLDI r0, 1\nRET"
        )
        assert cpu.regs[0] == 1
        assert cpu.regs[1] == 2

    def test_nested_calls(self):
        cpu = run(
            "CALL outer\nHALT\n"
            "outer:\nCALL inner\nADDI r0, 1\nRET\n"
            "inner:\nLDI r0, 10\nRET"
        )
        assert cpu.regs[0] == 11


class TestStack:
    def test_push_pop(self):
        cpu = run("LDI r0, 55\nPUSH r0\nLDI r0, 0\nPOP r1\nHALT")
        assert cpu.regs[1] == 55
        assert cpu.regs[15] == INITIAL_SP

    def test_stack_grows_down(self):
        cpu = run("LDI r0, 1\nPUSH r0\nHALT")
        assert cpu.regs[15] == INITIAL_SP - 2


class TestFrameSemantics:
    def test_yield_stops_frame(self):
        cpu = run("LDI r0, 1\nYIELD\nLDI r0, 2\nHALT")
        assert cpu.regs[0] == 1
        assert not cpu.halted

    def test_resume_after_yield(self):
        program = assemble(".org 0x0100\nLDI r0, 1\nYIELD\nLDI r0, 2\nHALT")
        memory = Memory()
        memory.load(program.origin, program.code)
        cpu = Cpu(memory)
        cpu.reset(program.entry)
        cpu.run_frame(1000)
        assert cpu.regs[0] == 1
        cpu.run_frame(1000)
        assert cpu.regs[0] == 2
        assert cpu.halted

    def test_cycle_budget_bounds_runaway(self):
        cpu = run("spin:\nJMP spin", max_cycles=500)
        assert cpu.cycles <= 500
        assert not cpu.halted

    def test_halted_cpu_stays_halted(self):
        cpu = run("HALT")
        used = cpu.run_frame(1000)
        assert used == 0

    def test_illegal_opcode_faults(self):
        memory = Memory()
        memory.write_word(0x0100, 0xEE00)  # bogus opcode
        cpu = Cpu(memory)
        cpu.reset(0x0100)
        with pytest.raises(CpuFault):
            cpu.run_frame(10)


class TestSaveState:
    def test_roundtrip(self):
        cpu = run("LDI r0, 1\nLDI r5, 99\nCMPI r5, 100\nYIELD\nHALT")
        blob = cpu.save_state()
        other = Cpu(Memory())
        other.load_state(blob)
        assert other.regs == cpu.regs
        assert other.pc == cpu.pc
        assert other.z == cpu.z
        assert other.n == cpu.n
        assert other.halted == cpu.halted

    def test_wrong_size_rejected(self):
        with pytest.raises(Exception):
            Cpu(Memory()).load_state(b"nope")


def run_reference(source: str, max_cycles: int = 10_000) -> Cpu:
    """Like :func:`run` but through the retained reference interpreter."""
    program = assemble(".org 0x0100\n" + source)
    memory = Memory()
    memory.load(program.origin, program.code)
    cpu = Cpu(memory)
    cpu.reset(program.entry)
    cpu.run_frame_reference(max_cycles)
    return cpu


class TestFastPathParity:
    """The table-dispatched loop against the reference interpreter."""

    def test_illegal_opcode_fault_matches_reference(self):
        for runner in (Cpu.run_frame, Cpu.run_frame_reference):
            memory = Memory()
            memory.write_word(0x0100, 0xEE00)
            cpu = Cpu(memory)
            cpu.reset(0x0100)
            with pytest.raises(CpuFault) as excinfo:
                runner(cpu, 10)
            assert "illegal opcode 0xee at pc=0x0100" in str(excinfo.value)
            assert cpu.pc == 0x0102  # fault leaves pc past the bad word

    def test_self_modifying_code(self):
        """The decode cache must not serve stale entries: the program
        rewrites an upcoming LDI's immediate before executing it."""
        source = """
            LDI r1, 0x0063      ; will be patched to 0x0064
            LDI r2, patch + 2   ; address of the immediate word
            LD  r3, [r2]
            ADDI r3, 1
            ST  [r2], r3
        patch:
            LDI r0, 0x0063
            HALT
        """
        fast = run(source)
        reference = run_reference(source)
        assert fast.regs[0] == reference.regs[0] == 0x0064

    def test_self_modifying_opcode_respects_cache_key(self):
        """Patching the instruction *word* (not just its immediate) must be
        picked up even at the same pc — the cache keys on (pc, word)."""
        source = """
        loop:
            LDI r2, target
            LD  r3, [r2]
            CMPI r0, 1          ; second pass?
            JZ  done
            LDI r0, 1
            LDI r4, 0x1234      ; patch target's word: NOP -> LDI r5, ...
            ST  [r2], r4
            JMP loop
        done:
        target:
            NOP
            HALT
        """
        # Assembling the exact patch bytes by hand is brittle; instead just
        # assert fast and reference agree on the full register file.
        fast = run(source)
        reference = run_reference(source)
        assert fast.regs == reference.regs
        assert fast.pc == reference.pc

    def test_budget_and_yield_accounting_match(self):
        source = "LDI r0, 7\nYIELD\nLDI r0, 8\nHALT"
        for budget in (1, 2, 3, 1000):
            a = run(source, max_cycles=budget)
            b = run_reference(source, max_cycles=budget)
            assert (a.regs, a.pc, a.cycles, a.halted) == (
                b.regs, b.pc, b.cycles, b.halted
            )

    def test_fast_loop_budget_bounds_runaway(self):
        cpu = run("spin:\nJMP spin", max_cycles=500)
        reference = run_reference("spin:\nJMP spin", max_cycles=500)
        assert cpu.cycles == reference.cycles
        assert cpu.pc == reference.pc
