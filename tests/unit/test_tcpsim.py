"""Unit tests for repro.net.tcpsim (the TCP-like baseline transport)."""

import pytest

from repro.net.netem import NetemConfig
from repro.net.tcpsim import MIN_RTO, TcpLikeNetwork


@pytest.fixture
def network(loop):
    return TcpLikeNetwork(loop, seed=1)


def payloads(socket):
    return [d.payload for d in socket.receive_all()]


class TestReliableDelivery:
    def test_basic_delivery(self, loop, network):
        a = network.socket("a")
        b = network.socket("b")
        network.connect("a", "b", NetemConfig(delay=0.01))
        a.send(b"hello", "b")
        loop.run(until=1.0)
        assert payloads(b) == [b"hello"]

    def test_in_order_delivery(self, loop, network):
        a = network.socket("a")
        b = network.socket("b")
        network.connect("a", "b", NetemConfig(delay=0.01))
        for i in range(20):
            a.send(bytes([i]), "b")
        loop.run(until=2.0)
        assert payloads(b) == [bytes([i]) for i in range(20)]

    def test_survives_total_loss_burst(self, loop, network):
        """Every first transmission lost; RTO recovery still delivers."""
        a = network.socket("a")
        b = network.socket("b")
        # 50% loss: retransmissions eventually get through.
        network.connect("a", "b", NetemConfig(delay=0.01, loss=0.5))
        for i in range(10):
            a.send(bytes([i]), "b")
        loop.run(until=30.0)
        assert payloads(b) == [bytes([i]) for i in range(10)]

    def test_reordered_segments_buffered(self, loop, network):
        a = network.socket("a")
        b = network.socket("b")
        network.connect("a", "b", NetemConfig(delay=0.05, reorder=0.3))
        for i in range(30):
            loop.call_at(i * 0.001, lambda i=i: a.send(bytes([i]), "b"))
        loop.run(until=10.0)
        assert payloads(b) == [bytes([i]) for i in range(30)]

    def test_duplicates_suppressed(self, loop, network):
        a = network.socket("a")
        b = network.socket("b")
        network.connect("a", "b", NetemConfig(delay=0.01, duplicate=0.5))
        for i in range(20):
            a.send(bytes([i]), "b")
        loop.run(until=10.0)
        assert payloads(b) == [bytes([i]) for i in range(20)]


class TestHeadOfLineBlocking:
    def test_lost_head_delays_rest(self, loop, network):
        """The §3.1 argument: one loss stalls all later messages ~an RTO."""
        a = network.socket("a")
        b = network.socket("b")
        # Drop exactly the first transmission by using a scripted scheduler:
        # loss=0.5 with the fixed seed drops some; instead measure latency
        # spread under loss vs no loss.
        network.connect("a", "b", NetemConfig(delay=0.01, loss=0.3))
        for i in range(50):
            loop.call_at(i * 0.01, lambda i=i: a.send(bytes([i]), "b"))
        loop.run(until=30.0)
        datagrams = b.receive_all()
        assert len(datagrams) == 50
        latencies = [d.arrived_at - i * 0.01 for i, d in enumerate(datagrams)]
        # Some messages must have waited for at least one RTO (recovery or
        # head-of-line), far above the 10 ms one-way latency.
        assert max(latencies) >= MIN_RTO

    def test_rto_tracks_srtt(self, loop, network):
        # RTT 0.16 s stays under MIN_RTO, so the first ACK samples cleanly.
        a = network.socket("a")
        network.socket("b")  # receiver must exist for delivery
        network.connect("a", "b", NetemConfig(delay=0.08))
        assert a.rto("b") == MIN_RTO  # before any sample
        a.send(b"x", "b")
        loop.run(until=5.0)
        assert a.rto("b") == pytest.approx(2 * 0.16, rel=0.1)

    def test_karns_rule_skips_retransmitted_samples(self, loop, network):
        # RTT 0.4 s exceeds MIN_RTO: every segment retransmits spuriously,
        # so no RTT sample may be taken (Karn's algorithm).
        a = network.socket("a")
        network.socket("b")  # receiver must exist for delivery
        network.connect("a", "b", NetemConfig(delay=0.2))
        a.send(b"x", "b")
        loop.run(until=5.0)
        assert a.rto("b") == MIN_RTO


class TestLifecycle:
    def test_closed_socket_rejects_send(self, loop, network):
        a = network.socket("a")
        a.close()
        with pytest.raises(RuntimeError):
            a.send(b"x", "b")

    def test_stats_count_messages(self, loop, network):
        a = network.socket("a")
        b = network.socket("b")
        network.connect("a", "b", NetemConfig(delay=0.01))
        a.send(b"abc", "b")
        loop.run(until=1.0)
        b.receive_all()
        assert a.stats.datagrams_sent == 1
        assert b.stats.datagrams_received == 1
