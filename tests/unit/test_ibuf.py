"""Unit tests for repro.core.ibuf (the IBuf input buffer)."""

import pytest

from repro.core.ibuf import InputBuffer
from repro.core.inputs import InputAssignment


class TestBasicStorage:
    def test_put_and_get(self):
        buffer = InputBuffer(2)
        assert buffer.put(5, 0, 0x11)
        assert buffer.get(5, 0) == 0x11

    def test_get_missing_is_none(self):
        buffer = InputBuffer(2)
        assert buffer.get(5, 0) is None
        assert not buffer.has(5, 0)

    def test_duplicate_put_ignored(self):
        """§3.1: 'only one copy of them will be kept in the buffer'."""
        buffer = InputBuffer(2)
        assert buffer.put(5, 0, 0x11)
        assert not buffer.put(5, 0, 0x11)

    def test_conflicting_put_raises(self):
        buffer = InputBuffer(2)
        buffer.put(5, 0, 0x11)
        with pytest.raises(ValueError):
            buffer.put(5, 0, 0x22)

    def test_zero_value_counts_as_present(self):
        buffer = InputBuffer(2)
        buffer.put(5, 0, 0)
        assert buffer.has(5, 0)
        assert not buffer.put(5, 0, 0)

    def test_invalid_site_count(self):
        with pytest.raises(ValueError):
            InputBuffer(0)


class TestCompleteness:
    def test_complete_requires_all_sites(self):
        buffer = InputBuffer(2)
        buffer.put(3, 0, 1)
        assert not buffer.complete(3, [0, 1])
        buffer.put(3, 1, 2)
        assert buffer.complete(3, [0, 1])

    def test_complete_with_empty_site_list(self):
        assert InputBuffer(2).complete(0, [])

    def test_complete_subset(self):
        buffer = InputBuffer(3)
        buffer.put(3, 1, 1)
        assert buffer.complete(3, [1])
        assert not buffer.complete(3, [0, 1])


class TestMerge:
    def test_merged_combines(self):
        buffer = InputBuffer(2)
        assignment = InputAssignment.standard(2)
        buffer.put(0, 0, 0x0001)
        buffer.put(0, 1, 0x0200)
        assert buffer.merged(0, assignment) == 0x0201

    def test_merged_missing_frame_is_zero(self):
        buffer = InputBuffer(2)
        assignment = InputAssignment.standard(2)
        assert buffer.merged(99, assignment) == 0

    def test_merged_partial_frame(self):
        buffer = InputBuffer(2)
        assignment = InputAssignment.standard(2)
        buffer.put(0, 1, 0x0300)
        assert buffer.merged(0, assignment) == 0x0300


class TestRangeFor:
    def test_range_returns_values(self):
        buffer = InputBuffer(2)
        for frame in range(4, 9):
            buffer.put(frame, 0, frame * 10)
        assert buffer.range_for(0, 5, 7) == [50, 60, 70]

    def test_range_with_gap_raises(self):
        buffer = InputBuffer(2)
        buffer.put(5, 0, 1)
        buffer.put(7, 0, 1)
        with pytest.raises(KeyError):
            buffer.range_for(0, 5, 7)

    def test_empty_range(self):
        assert InputBuffer(2).range_for(0, 5, 4) == []


class TestPruning:
    def test_prune_drops_old_frames(self):
        buffer = InputBuffer(2)
        for frame in range(10):
            buffer.put(frame, 0, frame)
        dropped = buffer.prune_below(5)
        assert dropped == 5
        assert buffer.floor == 5
        assert buffer.get(4, 0) is None
        assert buffer.get(5, 0) == 5

    def test_put_below_floor_rejected(self):
        buffer = InputBuffer(2)
        buffer.put(3, 0, 1)
        buffer.prune_below(5)
        assert not buffer.put(3, 0, 99)  # silently ignored, like a late dup

    def test_prune_idempotent(self):
        buffer = InputBuffer(2)
        buffer.put(0, 0, 1)
        buffer.prune_below(1)
        assert buffer.prune_below(1) == 0

    def test_prune_backwards_is_noop(self):
        buffer = InputBuffer(2)
        buffer.prune_below(10)
        assert buffer.prune_below(5) == 0
        assert buffer.floor == 10

    def test_complete_below_floor_true(self):
        buffer = InputBuffer(2)
        buffer.put(0, 0, 1)
        buffer.put(0, 1, 1)
        buffer.prune_below(3)
        assert buffer.complete(0, [0, 1])

    def test_len_tracks_slots(self):
        buffer = InputBuffer(2)
        buffer.put(0, 0, 1)
        buffer.put(0, 1, 1)
        buffer.put(1, 0, 1)
        assert len(buffer) == 2
