"""Unit tests for repro.emulator.memory."""

import pytest

from repro.emulator.memory import MEMORY_SIZE, Memory


class TestByteAccess:
    def test_read_write_byte(self):
        memory = Memory()
        memory.write_byte(0x1234, 0xAB)
        assert memory.read_byte(0x1234) == 0xAB

    def test_byte_masked_to_8_bits(self):
        memory = Memory()
        memory.write_byte(0, 0x1FF)
        assert memory.read_byte(0) == 0xFF

    def test_address_wraps_16_bits(self):
        memory = Memory()
        memory.write_byte(0x10000, 0x42)  # wraps to 0
        assert memory.read_byte(0) == 0x42

    def test_initial_memory_zero(self):
        memory = Memory()
        assert all(memory.read_byte(a) == 0 for a in range(0, 0x1000, 97))


class TestWordAccess:
    def test_little_endian(self):
        memory = Memory()
        memory.write_word(0x100, 0xBEEF)
        assert memory.read_byte(0x100) == 0xEF
        assert memory.read_byte(0x101) == 0xBE
        assert memory.read_word(0x100) == 0xBEEF

    def test_word_masked(self):
        memory = Memory()
        memory.write_word(0, 0x12345)
        assert memory.read_word(0) == 0x2345


class TestBulk:
    def test_load_and_dump(self):
        memory = Memory()
        memory.load(0x200, b"\x01\x02\x03")
        assert memory.dump(0x200, 3) == b"\x01\x02\x03"

    def test_load_overflow_rejected(self):
        memory = Memory()
        with pytest.raises(ValueError):
            memory.load(MEMORY_SIZE - 1, b"\x01\x02")

    def test_restore_roundtrip(self):
        memory = Memory()
        memory.write_byte(5, 99)
        snapshot = memory.dump()
        other = Memory()
        other.restore(snapshot)
        assert other.read_byte(5) == 99

    def test_restore_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            Memory().restore(b"tiny")

    def test_clear(self):
        memory = Memory()
        memory.write_byte(5, 99)
        memory.clear()
        assert memory.read_byte(5) == 0


class TestHooks:
    def test_read_hook_intercepts(self):
        memory = Memory()
        memory.add_hook(0x8000, 0x8010, read=lambda addr: addr & 0xFF)
        assert memory.read_byte(0x8005) == 0x05

    def test_write_hook_intercepts(self):
        memory = Memory()
        written = {}
        memory.add_hook(0x8000, 0x8010, write=lambda a, v: written.update({a: v}))
        memory.write_byte(0x8003, 7)
        assert written == {0x8003: 7}
        # Backing store untouched.
        assert memory.dump(0x8003, 1) == b"\x00"

    def test_read_only_region_ignores_writes(self):
        memory = Memory()
        memory.add_hook(0x8000, 0x8010, read=lambda addr: 0x42)
        memory.write_byte(0x8000, 0x99)
        assert memory.read_byte(0x8000) == 0x42

    def test_outside_hook_unaffected(self):
        memory = Memory()
        memory.add_hook(0x8000, 0x8010, read=lambda addr: 0x42)
        memory.write_byte(0x7FFF, 1)
        assert memory.read_byte(0x7FFF) == 1

    def test_bad_hook_range(self):
        with pytest.raises(ValueError):
            Memory().add_hook(10, 5)
