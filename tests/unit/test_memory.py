"""Unit tests for repro.emulator.memory."""

import pytest

from repro.emulator.memory import MEMORY_SIZE, Memory


class TestByteAccess:
    def test_read_write_byte(self):
        memory = Memory()
        memory.write_byte(0x1234, 0xAB)
        assert memory.read_byte(0x1234) == 0xAB

    def test_byte_masked_to_8_bits(self):
        memory = Memory()
        memory.write_byte(0, 0x1FF)
        assert memory.read_byte(0) == 0xFF

    def test_address_wraps_16_bits(self):
        memory = Memory()
        memory.write_byte(0x10000, 0x42)  # wraps to 0
        assert memory.read_byte(0) == 0x42

    def test_initial_memory_zero(self):
        memory = Memory()
        assert all(memory.read_byte(a) == 0 for a in range(0, 0x1000, 97))


class TestWordAccess:
    def test_little_endian(self):
        memory = Memory()
        memory.write_word(0x100, 0xBEEF)
        assert memory.read_byte(0x100) == 0xEF
        assert memory.read_byte(0x101) == 0xBE
        assert memory.read_word(0x100) == 0xBEEF

    def test_word_masked(self):
        memory = Memory()
        memory.write_word(0, 0x12345)
        assert memory.read_word(0) == 0x2345


class TestBulk:
    def test_load_and_dump(self):
        memory = Memory()
        memory.load(0x200, b"\x01\x02\x03")
        assert memory.dump(0x200, 3) == b"\x01\x02\x03"

    def test_load_overflow_rejected(self):
        memory = Memory()
        with pytest.raises(ValueError):
            memory.load(MEMORY_SIZE - 1, b"\x01\x02")

    def test_restore_roundtrip(self):
        memory = Memory()
        memory.write_byte(5, 99)
        snapshot = memory.dump()
        other = Memory()
        other.restore(snapshot)
        assert other.read_byte(5) == 99

    def test_restore_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            Memory().restore(b"tiny")

    def test_clear(self):
        memory = Memory()
        memory.write_byte(5, 99)
        memory.clear()
        assert memory.read_byte(5) == 0


class TestHooks:
    def test_read_hook_intercepts(self):
        memory = Memory()
        memory.add_hook(0x8000, 0x8010, read=lambda addr: addr & 0xFF)
        assert memory.read_byte(0x8005) == 0x05

    def test_write_hook_intercepts(self):
        memory = Memory()
        written = {}
        memory.add_hook(0x8000, 0x8010, write=lambda a, v: written.update({a: v}))
        memory.write_byte(0x8003, 7)
        assert written == {0x8003: 7}
        # Backing store untouched.
        assert memory.dump(0x8003, 1) == b"\x00"

    def test_read_only_region_ignores_writes(self):
        memory = Memory()
        memory.add_hook(0x8000, 0x8010, read=lambda addr: 0x42)
        memory.write_byte(0x8000, 0x99)
        assert memory.read_byte(0x8000) == 0x42

    def test_outside_hook_unaffected(self):
        memory = Memory()
        memory.add_hook(0x8000, 0x8010, read=lambda addr: 0x42)
        memory.write_byte(0x7FFF, 1)
        assert memory.read_byte(0x7FFF) == 1

    def test_bad_hook_range(self):
        with pytest.raises(ValueError):
            Memory().add_hook(10, 5)


class TestWordFastPath:
    """The per-address word routing table (docs/performance.md)."""

    def test_word_wraps_at_top_of_memory(self):
        memory = Memory()
        memory.write_byte(0xFFFF, 0x34)
        memory.write_byte(0x0000, 0x12)
        assert memory.read_word(0xFFFF) == 0x1234
        memory.write_word(0xFFFF, 0xBEEF)
        assert memory.read_byte(0xFFFF) == 0xEF
        assert memory.read_byte(0x0000) == 0xBE

    def test_word_spanning_into_hooked_page_uses_hooks(self):
        memory = Memory()
        memory.add_hook(0x0200, 0x0300, read=lambda a: 0x77)
        # Low byte on the plain page, high byte inside the hooked page.
        memory.write_byte(0x01FF, 0x11)
        assert memory.read_word(0x01FF) == (0x77 << 8) | 0x11

    def test_hook_added_after_writes_still_intercepts(self):
        memory = Memory()
        memory.write_word(0x3000, 0xAAAA)  # page is plain at write time
        memory.add_hook(0x3000, 0x3002, read=lambda a: 0x55)
        assert memory.read_word(0x3000) == 0x5555

    def test_hook_spanning_pages_covers_both(self):
        seen = []
        memory = Memory()
        memory.add_hook(0x04F0, 0x0510, write=lambda a, v: seen.append((a, v)))
        memory.write_byte(0x04F8, 1)  # first page
        memory.write_byte(0x0503, 2)  # second page
        assert seen == [(0x04F8, 1), (0x0503, 2)]


class TestDirtyTracking:
    def test_dirty_pages_since_mark(self):
        memory = Memory()
        mark = memory.mark()
        memory.write_byte(0x0105, 1)
        memory.write_word(0x30FF, 0xBEEF)  # straddles pages 0x30 and 0x31
        assert memory.dirty_pages_since(mark) == [0x01, 0x30, 0x31]

    def test_marks_are_independent(self):
        memory = Memory()
        first = memory.mark()
        memory.write_byte(0x0100, 1)
        second = memory.mark()
        memory.write_byte(0x0200, 1)
        assert memory.dirty_pages_since(first) == [0x01, 0x02]
        assert memory.dirty_pages_since(second) == [0x02]

    def test_bulk_mutations_mark_dirty(self):
        memory = Memory()
        mark = memory.mark()
        memory.load(0x01FE, b"abcd")
        assert memory.dirty_pages_since(mark) == [0x01, 0x02]
        mark = memory.mark()
        memory.clear()
        assert len(memory.dirty_pages_since(mark)) == 256
        mark = memory.mark()
        memory.restore(bytes(MEMORY_SIZE))
        assert len(memory.dirty_pages_since(mark)) == 256

    def test_page_digest_stable_then_sensitive(self):
        memory = Memory()
        first = memory.page_digest()
        assert memory.page_digest() == first  # no writes: identical
        memory.write_byte(0x1234, 9)
        second = memory.page_digest()
        assert second != first
        # Only the written 1 KiB chunk's 4-byte CRC slot changed.
        chunk = 0x1234 >> 10
        for c in range(64):
            slot = slice(c * 4, c * 4 + 4)
            if c == chunk:
                assert second[slot] != first[slot]
            else:
                assert second[slot] == first[slot]

    def test_view_is_zero_copy_and_readonly(self):
        memory = Memory()
        memory.write_byte(0x0100, 0xAB)
        view = memory.view(0x0100, 4)
        assert view[0] == 0xAB
        memory.write_byte(0x0100, 0xCD)
        assert view[0] == 0xCD  # aliases live memory
        with pytest.raises(TypeError):
            view[0] = 0


class TestDigestBackends:
    """The optional numpy digest: same sensitivity contract, own codomain.

    Digest bytes are an internal live-compare contract between same-config
    sites, never persisted — so the two backends may (and do) produce
    different bytes, but each must be deterministic and chunk-sensitive.
    """

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            Memory(digest_backend="md5")

    def test_env_flag_selects_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUMPY_DIGEST", "1")
        memory = Memory()
        assert memory.digest_backend in ("numpy", "crc32")  # crc32 iff no numpy

    def test_numpy_backend_matches_contract(self):
        pytest.importorskip("numpy")
        a = Memory(digest_backend="numpy")
        b = Memory(digest_backend="numpy")
        assert a.digest_backend == "numpy"
        a.write_word(0x2000, 0xBEEF)
        b.write_word(0x2000, 0xBEEF)
        assert a.page_digest() == b.page_digest()  # deterministic across sites
        first = a.page_digest()
        a.write_byte(0x1234, 9)
        second = a.page_digest()
        chunk = 0x1234 >> 10
        slot = slice(chunk * 4, chunk * 4 + 4)
        assert second[slot] != first[slot]
        for c in range(64):
            if c != chunk:
                other = slice(c * 4, c * 4 + 4)
                assert second[other] == first[other]

    def test_numpy_digest_warm_path_matches_cold(self):
        pytest.importorskip("numpy")
        memory = Memory(digest_backend="numpy")
        memory.write_word(0x3000, 0x1234)
        warm = memory.page_digest()  # incremental after the cold pass
        twin = Memory(digest_backend="numpy")
        twin.write_word(0x3000, 0x1234)
        twin._mark_all_dirty()
        assert twin.page_digest() == warm
