"""Unit tests for repro.net.simnet (the simulated UDP network)."""

import pytest

from repro.net.netem import NetemConfig
from repro.net.simnet import SimNetwork
from repro.sim.process import WaitMessage, spawn


@pytest.fixture
def network(loop):
    return SimNetwork(loop, seed=1)


class TestDelivery:
    def test_basic_delivery(self, loop, network):
        a = network.socket("a")
        b = network.socket("b")
        network.connect("a", "b", NetemConfig(delay=0.01))
        a.send(b"hello", "b")
        loop.run()
        datagrams = b.receive_all()
        assert len(datagrams) == 1
        assert datagrams[0].payload == b"hello"
        assert datagrams[0].source == "a"
        assert datagrams[0].arrived_at == pytest.approx(0.01)

    def test_bidirectional(self, loop, network):
        a = network.socket("a")
        b = network.socket("b")
        network.connect("a", "b", NetemConfig(delay=0.01))
        a.send(b"ping", "b")
        b.send(b"pong", "a")
        loop.run()
        assert b.receive_one().payload == b"ping"
        assert a.receive_one().payload == b"pong"

    def test_asymmetric_link(self, loop, network):
        a = network.socket("a")
        b = network.socket("b")
        network.connect(
            "a", "b", NetemConfig(delay=0.01), reverse_config=NetemConfig(delay=0.5)
        )
        a.send(b"fast", "b")
        b.send(b"slow", "a")
        loop.run()
        assert b.receive_one().arrived_at == pytest.approx(0.01)
        assert a.receive_one().arrived_at == pytest.approx(0.5)

    def test_unknown_destination_silently_dropped(self, loop, network):
        a = network.socket("a")
        a.send(b"void", "nowhere")
        loop.run()  # no crash; UDP semantics

    def test_default_link_used_for_unconfigured_pairs(self, loop, network):
        network.set_default_link(NetemConfig(delay=0.2))
        a = network.socket("a")
        b = network.socket("b")
        a.send(b"x", "b")
        loop.run()
        assert b.receive_one().arrived_at == pytest.approx(0.2)

    def test_no_default_link_means_unreachable(self, loop, network):
        network.set_default_link(None)
        a = network.socket("a")
        b = network.socket("b")
        a.send(b"x", "b")
        loop.run()
        assert b.receive_one() is None

    def test_loss_drops_packets(self, loop, network):
        a = network.socket("a")
        b = network.socket("b")
        network.connect("a", "b", NetemConfig(loss=1.0))
        for __ in range(10):
            a.send(b"x", "b")
        loop.run()
        assert b.receive_all() == []
        assert a.stats.datagrams_dropped == 10

    def test_duplication_delivers_twice(self, loop, network):
        a = network.socket("a")
        b = network.socket("b")
        network.connect("a", "b", NetemConfig(duplicate=1.0))
        a.send(b"x", "b")
        loop.run()
        assert len(b.receive_all()) == 2
        assert a.stats.datagrams_duplicated == 1

    def test_stats_counters(self, loop, network):
        a = network.socket("a")
        b = network.socket("b")
        network.connect("a", "b", NetemConfig())
        a.send(b"12345", "b")
        loop.run()
        b.receive_all()
        assert a.stats.datagrams_sent == 1
        assert a.stats.bytes_sent == 5
        assert b.stats.datagrams_received == 1
        assert b.stats.bytes_received == 5


class TestSocketLifecycle:
    def test_socket_identity(self, network):
        assert network.socket("a") is network.socket("a")

    def test_closed_socket_rejects_send(self, loop, network):
        a = network.socket("a")
        a.close()
        with pytest.raises(RuntimeError):
            a.send(b"x", "b")

    def test_closed_socket_ignores_delivery(self, loop, network):
        a = network.socket("a")
        b = network.socket("b")
        network.connect("a", "b", NetemConfig(delay=0.01))
        a.send(b"x", "b")
        b.close()
        loop.run()
        assert b.receive_all() == []


class TestMailboxIntegration:
    def test_process_blocks_until_arrival(self, loop, network):
        a = network.socket("a")
        b = network.socket("b")
        network.connect("a", "b", NetemConfig(delay=0.25))
        received = []

        def consumer():
            envelope = yield WaitMessage(b.mailbox)
            received.append((envelope.payload.payload, loop.clock.now()))

        spawn(loop, consumer())
        a.send(b"wake", "b")
        loop.run()
        assert received == [(b"wake", 0.25)]


class TestDeterminism:
    def _run(self, seed: int):
        from repro.sim.eventloop import EventLoop

        loop = EventLoop()
        network = SimNetwork(loop, seed=seed)
        a = network.socket("a")
        b = network.socket("b")
        network.connect("a", "b", NetemConfig(delay=0.01, jitter=0.005, loss=0.2))
        for i in range(100):
            loop.call_at(i * 0.01, lambda i=i: a.send(bytes([i % 256]), "b"))
        loop.run()
        return [(d.payload, d.arrived_at) for d in b.receive_all()]

    def test_same_seed_same_trace(self):
        assert self._run(3) == self._run(3)

    def test_different_seed_different_trace(self):
        assert self._run(3) != self._run(4)
