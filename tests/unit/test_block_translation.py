"""The block-translation layer: parity, guards, and cache management.

The golden-trace integration tests already prove whole-game parity; these
tests pin down the cache *mechanics* — invalidation on real byte changes,
cheap revalidation on false-positive guard misses, the pathological-SMC
blacklist, and the MMIO hooks-epoch flush — plus the fault/budget edge
cases that the table-interpreter suite pins for ``run_frame``.
"""

import pytest

from repro.emulator.assembler import assemble
from repro.emulator.cpu import Cpu, CpuFault
from repro.emulator.machine import create_game
from repro.emulator.memory import Memory


def boot(source: str) -> Cpu:
    program = assemble(".org 0x0100\n" + source)
    memory = Memory()
    memory.load(program.origin, program.code)
    cpu = Cpu(memory)
    cpu.reset(program.entry)
    return cpu


def run_blocks(source: str, max_cycles: int = 10_000) -> Cpu:
    cpu = boot(source)
    cpu.run_frame_blocks(max_cycles)
    return cpu


def run_reference(source: str, max_cycles: int = 10_000) -> Cpu:
    cpu = boot(source)
    cpu.run_frame_reference(max_cycles)
    return cpu


class TestBlockParity:
    """Edge cases the whole-game traces may not hit every run."""

    def test_illegal_opcode_fault_matches_reference(self):
        memory = Memory()
        memory.write_word(0x0100, 0xEE00)
        cpu = Cpu(memory)
        cpu.reset(0x0100)
        with pytest.raises(CpuFault) as excinfo:
            cpu.run_frame_blocks(10)
        assert "illegal opcode 0xee at pc=0x0100" in str(excinfo.value)
        assert cpu.pc == 0x0102  # fault leaves pc past the bad word

    def test_budget_and_yield_accounting_match(self):
        source = "LDI r0, 7\nYIELD\nLDI r0, 8\nHALT"
        for budget in (1, 2, 3, 1000):
            a = run_blocks(source, max_cycles=budget)
            b = run_reference(source, max_cycles=budget)
            assert (a.regs, a.pc, a.cycles, a.halted) == (
                b.regs, b.pc, b.cycles, b.halted
            )

    @pytest.mark.parametrize("budget", [1, 2, 3, 5, 499, 500])
    def test_superloop_budget_bounds_runaway(self, budget):
        """A self-jump compiles to an internal loop; its budget accounting
        must still match the reference to the cycle."""
        a = run_blocks("spin:\nJMP spin", max_cycles=budget)
        b = run_reference("spin:\nJMP spin", max_cycles=budget)
        assert (a.cycles, a.pc) == (b.cycles, b.pc)

    @pytest.mark.parametrize("budget", [3, 4, 5, 6, 7, 1000])
    def test_block_budget_tail_single_steps(self, budget):
        """When the remaining budget cannot cover a whole block, the tail
        must be single-stepped exactly as the reference would."""
        source = """
            LDI r1, 1
            LDI r2, 2
            LDI r3, 3
            LDI r4, 4
            HALT
        """
        a = run_blocks(source, max_cycles=budget)
        b = run_reference(source, max_cycles=budget)
        assert (a.regs, a.pc, a.cycles, a.halted) == (
            b.regs, b.pc, b.cycles, b.halted
        )

    def test_mid_block_store_into_own_range(self):
        """A store into the currently-executing block exits early and the
        freshly written instruction runs, same as the interpreters."""
        source = """
            LDI r1, 0x0063      ; will be patched to 0x0064
            LDI r2, patch + 2   ; address of the immediate word
            LD  r3, [r2]
            ADDI r3, 1
            ST  [r2], r3
        patch:
            LDI r0, 0x0063
            HALT
        """
        block = run_blocks(source)
        reference = run_reference(source)
        assert block.regs[0] == reference.regs[0] == 0x0064

    def test_patched_opcode_word_is_picked_up(self):
        source = """
        loop:
            LDI r2, target
            LD  r3, [r2]
            CMPI r0, 1          ; second pass?
            JZ  done
            LDI r0, 1
            LDI r4, 0x1234      ; patch target's word: NOP -> LDI r5, ...
            ST  [r2], r4
            JMP loop
        done:
        target:
            NOP
            HALT
        """
        block = run_blocks(source)
        reference = run_reference(source)
        assert block.regs == reference.regs
        assert block.pc == reference.pc


class TestCacheManagement:
    def test_unrelated_write_on_code_page_revalidates(self):
        """A write that dirties the code page but not the block's bytes is
        a guard false-positive: the cache must revalidate, not recompile."""
        source = """
        loop:
            LD   r1, [r0+0x01F0]   ; data word on the code page
            ADDI r1, 1
            ST   [r0+0x01F0], r1   ; dirties page 0x01 every frame
            YIELD
            JMP  loop
        """
        cpu = boot(source)
        for _ in range(10):
            cpu.run_frame_blocks(1000)
        assert cpu.block_revalidations > 0
        assert cpu.block_invalidations == 0
        assert cpu.memory.read_word(0x01F0) == 10

    def test_smc_rom_invalidates_and_matches_reference(self):
        """The smc ROM patches an executed instruction every frame: stale
        closures must be discarded (true invalidations, then the blacklist
        falls back to table stepping) while state stays bit-identical."""
        golden = create_game("smc")
        golden.interpreter = "reference"
        block = create_game("smc")
        assert block.interpreter == "block"
        for frame in range(200):
            word = (frame * 0x9E37) & 0xFFFF
            golden.step(word)
            block.step(word)
        assert golden.save_state() == block.save_state()
        assert golden.checksum() == block.checksum()
        stats = block.cpu_stats()
        assert stats["block_invalidations"] > 0
        assert stats["block_revalidations"] > 0
        # The patch site trips the per-address invalidation limit, so the
        # pathological block ends up table-stepped rather than recompiled
        # forever, and the cache stays bounded.
        assert stats["fallback_steps"] > 0
        assert stats["blocks_compiled"] < 1000
        assert stats["cached_blocks"] <= stats["blocks_compiled"]

    def test_add_hook_flushes_cache(self):
        """Registering an MMIO hook changes bus semantics: every compiled
        closure is stale by definition and the cache must flush."""
        source = """
        loop:
            ADDI r1, 1
            YIELD
            JMP  loop
        """
        cpu = boot(source)
        for _ in range(3):
            cpu.run_frame_blocks(1000)
        compiled_before = cpu.blocks_compiled
        assert compiled_before > 0
        cpu.run_frame_blocks(1000)
        assert cpu.blocks_compiled == compiled_before  # steady state

        cpu.memory.add_hook(0xFE00, 0xFE10, read=lambda addr: 0)
        cpu.run_frame_blocks(1000)
        assert cpu.blocks_compiled > compiled_before  # recompiled fresh
        assert cpu.regs[1] == 5  # one increment per frame, none lost
