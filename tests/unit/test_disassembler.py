"""Unit tests for the RC-16 disassembler (assembler round-trip oracle)."""

import pytest

from repro.emulator.assembler import assemble
from repro.emulator.disassembler import (
    DisassemblyError,
    disassemble,
    disassemble_one,
    listing,
)


class TestSingleInstructions:
    @pytest.mark.parametrize(
        "source, expected",
        [
            ("NOP", "NOP"),
            ("HALT", "HALT"),
            ("YIELD", "YIELD"),
            ("RET", "RET"),
            ("LDI r3, 0x12", "LDI r3, 0x12"),
            ("MOV r1, r2", "MOV r1, r2"),
            ("LD r1, [r2+0x10]", "LD r1, [r2+0x10]"),
            ("ST [r2+4], r1", "ST [r2+0x4], r1"),
            ("ADD r4, r5", "ADD r4, r5"),
            ("JMP 0x200", "JMP 0x200"),
            ("PUSH r9", "PUSH r9"),
        ],
    )
    def test_roundtrip_text(self, source, expected):
        code = assemble(source).code
        instruction = disassemble_one(code, 0, 0x0100)
        assert instruction.text == expected

    def test_address_recorded(self):
        code = assemble("NOP\nHALT").code
        instructions = disassemble(code, origin=0x0100)
        assert [i.address for i in instructions] == [0x0100, 0x0102]

    def test_immediate_size(self):
        code = assemble("LDI r0, 5\nNOP").code
        instructions = disassemble(code)
        assert instructions[0].size == 4
        assert instructions[1].size == 2


class TestRoundTrip:
    def test_reassembly_fixpoint(self):
        """disassemble(assemble(src)) reassembles to identical bytes."""
        source = """
        .org 0x0100
        start:
            LDI r0, 0
            LD r1, [r0+0x20]
            CMPI r1, 3
            JZ 0x0100
            ADDI r1, -1
            ST [r0+0x20], r1
            CALL 0x0130
            YIELD
            JMP 0x0100
        """
        original = assemble(source).code
        text = "\n".join(i.text for i in disassemble(original))
        reassembled = assemble(".org 0x0100\n" + text).code
        assert reassembled == original

    def test_pong_rom_disassembles_fully(self):
        from repro.emulator.roms.pong import PONG_SOURCE

        program = assemble(PONG_SOURCE)
        instructions = disassemble(program.code, origin=program.origin)
        assert len(instructions) > 100
        text = "\n".join(i.text for i in instructions)
        reassembled = assemble(f".org 0x{program.origin:04X}\n" + text).code
        assert reassembled == program.code

    def test_tankduel_rom_disassembles_fully(self):
        from repro.emulator.roms.tankduel import TANKDUEL_SOURCE

        program = assemble(TANKDUEL_SOURCE)
        instructions = disassemble(program.code, origin=program.origin)
        reassembled = assemble(
            f".org 0x{program.origin:04X}\n"
            + "\n".join(i.text for i in instructions)
        ).code
        assert reassembled == program.code


class TestErrors:
    def test_unknown_opcode(self):
        with pytest.raises(DisassemblyError):
            disassemble_one(b"\x00\xEE", 0, 0)

    def test_truncated_instruction(self):
        with pytest.raises(DisassemblyError):
            disassemble_one(b"\x00", 0, 0)

    def test_truncated_immediate(self):
        code = assemble("LDI r0, 5").code
        with pytest.raises(DisassemblyError):
            disassemble_one(code[:-2], 0, 0)

    def test_listing_format(self):
        text = listing(assemble("NOP\nHALT").code, origin=0x0100)
        assert text.splitlines()[0] == "0100  NOP"
