"""Unit tests for repro.core.inputs (bit strings and SET[k] partitions)."""

import pytest

from repro.core.inputs import (
    BITS_PER_PLAYER,
    Buttons,
    IdleSource,
    InputAssignment,
    InputRecorder,
    PadSource,
    RandomSource,
    RecordedSource,
    ScriptedSource,
    describe_word,
    pack_buttons,
    player_mask,
    player_shift,
    unpack_buttons,
)


class TestBitLayout:
    def test_player_shift(self):
        assert player_shift(0) == 0
        assert player_shift(1) == BITS_PER_PLAYER
        assert player_shift(3) == 3 * BITS_PER_PLAYER

    def test_negative_player_rejected(self):
        with pytest.raises(ValueError):
            player_shift(-1)

    def test_player_masks_disjoint(self):
        assert player_mask(0) & player_mask(1) == 0
        assert player_mask(1) == 0xFF00

    def test_pack_unpack_roundtrip(self):
        for player in range(4):
            word = pack_buttons(player, Buttons.A | Buttons.LEFT)
            assert unpack_buttons(word, player) == Buttons.A | Buttons.LEFT
            for other in range(4):
                if other != player:
                    assert unpack_buttons(word, other) == 0

    def test_pack_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            pack_buttons(0, 0x1FF)

    def test_describe_word(self):
        word = pack_buttons(0, Buttons.UP) | pack_buttons(1, Buttons.A | Buttons.B)
        text = describe_word(word)
        assert "P0[UP]" in text
        assert "P1[A+B]" in text


class TestInputAssignment:
    def test_standard_two_sites(self):
        assignment = InputAssignment.standard(2)
        assert len(assignment) == 2
        assert assignment.mask(0) == 0x00FF
        assert assignment.mask(1) == 0xFF00

    def test_multiple_players_per_site(self):
        assignment = InputAssignment.standard(2, players_per_site=2)
        assert assignment.mask(0) == 0xFFFF
        assert assignment.mask(1) == 0xFFFF0000

    def test_overlapping_masks_rejected(self):
        with pytest.raises(ValueError):
            InputAssignment([0xFF, 0xF0])

    def test_with_observers(self):
        assignment = InputAssignment.with_observers(2, 2)
        assert len(assignment) == 4
        assert assignment.mask(2) == 0
        assert assignment.mask(3) == 0
        assert assignment.gating_sites() == [0, 1]

    def test_restrict_masks_foreign_bits(self):
        assignment = InputAssignment.standard(2)
        word = 0xFFFF
        assert assignment.restrict(word, 0) == 0x00FF

    def test_merge_combines_partials(self):
        assignment = InputAssignment.standard(2)
        merged = assignment.merge({0: 0x0011, 1: 0x2200})
        assert merged == 0x2211

    def test_merge_discards_uncontrolled_bits(self):
        assignment = InputAssignment.standard(2)
        # Site 0 claims bits in site 1's byte: discarded.
        assert assignment.merge({0: 0xFF11}) == 0x0011

    def test_merge_empty(self):
        assert InputAssignment.standard(2).merge({}) == 0

    def test_controlled_mask(self):
        assert InputAssignment.standard(2).controlled_mask() == 0xFFFF


class TestSources:
    def test_idle_source_always_zero(self):
        source = IdleSource()
        assert all(source.get(f) == 0 for f in range(100))

    def test_scripted_source_exact_frames(self):
        source = ScriptedSource({3: Buttons.A, 7: Buttons.B})
        assert source.get(3) == Buttons.A
        assert source.get(7) == Buttons.B
        assert source.get(5) == 0

    def test_scripted_source_hold(self):
        source = ScriptedSource({3: Buttons.A, 7: Buttons.B}, hold=True)
        assert source.get(5) == Buttons.A
        assert source.get(100) == Buttons.B
        assert source.get(0) == 0

    def test_random_source_deterministic(self):
        a = RandomSource(seed=9)
        b = RandomSource(seed=9)
        assert [a.get(f) for f in range(200)] == [b.get(f) for f in range(200)]

    def test_random_source_random_access_consistent(self):
        sequential = RandomSource(seed=9)
        seq = [sequential.get(f) for f in range(100)]
        jumpy = RandomSource(seed=9)
        assert jumpy.get(50) == seq[50]
        assert jumpy.get(10) == seq[10]
        assert jumpy.get(99) == seq[99]

    def test_random_source_respects_mask(self):
        source = RandomSource(seed=1, toggle_p=0.9, mask=Buttons.UP | Buttons.DOWN)
        assert all(
            source.get(f) & ~(Buttons.UP | Buttons.DOWN) == 0 for f in range(100)
        )

    def test_random_source_negative_frame_is_zero(self):
        assert RandomSource(seed=1).get(-5) == 0

    def test_random_source_bad_probability(self):
        with pytest.raises(ValueError):
            RandomSource(seed=1, toggle_p=1.5)

    def test_pad_source_shifts(self):
        inner = ScriptedSource({0: Buttons.A})
        assert PadSource(inner, player=1).get(0) == Buttons.A << 8
        assert PadSource(inner, player=0).get(0) == Buttons.A

    def test_recorded_source_replays(self):
        source = RecordedSource([1, 2, 3])
        assert [source.get(f) for f in range(5)] == [1, 2, 3, 0, 0]
        assert len(source) == 3

    def test_recorder_wraps_and_replays(self):
        recorder = InputRecorder(RandomSource(seed=4))
        original = [recorder.get(f) for f in range(50)]
        replay = recorder.to_recorded(50)
        assert [replay.get(f) for f in range(50)] == original
