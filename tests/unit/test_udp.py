"""Unit tests for repro.net.udp (real sockets on localhost)."""

import asyncio
import time

import pytest

from repro.net.udp import (
    MAX_DATAGRAM,
    AsyncUdpEndpoint,
    UdpSocket,
    format_address,
    parse_address,
)


class TestAddressing:
    def test_parse_roundtrip(self):
        assert parse_address("127.0.0.1:8000") == ("127.0.0.1", 8000)
        assert format_address("127.0.0.1", 8000) == "127.0.0.1:8000"

    @pytest.mark.parametrize("bad", ["localhost", "1.2.3.4:", ":99", "a:b:c"])
    def test_parse_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)


class TestUdpSocket:
    def test_send_receive_roundtrip(self):
        a, b = UdpSocket(), UdpSocket()
        try:
            a.send(b"hello-udp", b.address)
            datagram = b.receive_blocking(timeout=2.0)
            assert datagram is not None
            assert datagram.payload == b"hello-udp"
            assert datagram.source == a.address
        finally:
            a.close()
            b.close()

    def test_receive_all_drains(self):
        a, b = UdpSocket(), UdpSocket()
        try:
            for i in range(5):
                a.send(bytes([i]), b.address)
            deadline = time.time() + 2.0
            collected = []
            while len(collected) < 5 and time.time() < deadline:
                collected.extend(b.receive_all())
                time.sleep(0.01)
            assert sorted(d.payload for d in collected) == [bytes([i]) for i in range(5)]
        finally:
            a.close()
            b.close()

    def test_receive_one_empty(self):
        a = UdpSocket()
        try:
            assert a.receive_one() is None
        finally:
            a.close()

    def test_oversized_datagram_rejected(self):
        a = UdpSocket()
        try:
            with pytest.raises(ValueError):
                a.send(b"x" * (MAX_DATAGRAM + 1), a.address)
        finally:
            a.close()

    def test_closed_socket_rejects_send(self):
        a = UdpSocket()
        a.close()
        with pytest.raises(RuntimeError):
            a.send(b"x", "127.0.0.1:9")

    def test_close_idempotent(self):
        a = UdpSocket()
        a.close()
        a.close()

    def test_arrival_timestamps_monotonic(self):
        a, b = UdpSocket(), UdpSocket()
        try:
            for __ in range(3):
                a.send(b"t", b.address)
                time.sleep(0.01)
            deadline = time.time() + 2.0
            stamps = []
            while len(stamps) < 3 and time.time() < deadline:
                datagram = b.receive_one()
                if datagram:
                    stamps.append(datagram.arrived_at)
            assert stamps == sorted(stamps)
        finally:
            a.close()
            b.close()

    def test_stats(self):
        a, b = UdpSocket(), UdpSocket()
        try:
            a.send(b"12345", b.address)
            assert b.receive_blocking(2.0) is not None
            assert a.stats.datagrams_sent == 1
            assert a.stats.bytes_sent == 5
            assert b.stats.datagrams_received == 1
        finally:
            a.close()
            b.close()


class TestAsyncUdpEndpoint:
    def test_roundtrip_on_event_loop(self):
        async def scenario():
            a = await AsyncUdpEndpoint.open()
            b = await AsyncUdpEndpoint.open()
            try:
                a.send(b"async-udp", b.address)
                await asyncio.wait_for(b.wait(timeout=2.0), timeout=5.0)
                datagrams = b.receive_all()
                assert [d.payload for d in datagrams] == [b"async-udp"]
                assert datagrams[0].source == a.address
            finally:
                a.close()
                b.close()

        asyncio.run(scenario())

    def test_error_received_counts_and_notifies(self):
        # Linux only surfaces ICMP errors on *connected* UDP sockets, so a
        # live-socket repro is platform-flaky; the callback contract is
        # what matters and is tested by direct invocation, exactly as the
        # asyncio transport would call it.
        async def scenario():
            endpoint = await AsyncUdpEndpoint.open()
            try:
                seen = []
                assert endpoint.transport_errors == 0
                endpoint.error_received(ConnectionRefusedError("boom"))
                assert endpoint.transport_errors == 1

                endpoint.on_transport_error = seen.append
                error = OSError("port unreachable")
                endpoint.error_received(error)
                assert endpoint.transport_errors == 2
                assert seen == [error]
            finally:
                endpoint.close()

        asyncio.run(scenario())

    def test_error_received_without_observer_never_raises(self):
        async def scenario():
            endpoint = await AsyncUdpEndpoint.open()
            try:
                for __ in range(3):
                    endpoint.error_received(OSError("icmp"))
                assert endpoint.transport_errors == 3
            finally:
                endpoint.close()

        asyncio.run(scenario())
