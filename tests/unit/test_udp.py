"""Unit tests for repro.net.udp (real sockets on localhost)."""

import time

import pytest

from repro.net.udp import MAX_DATAGRAM, UdpSocket, format_address, parse_address


class TestAddressing:
    def test_parse_roundtrip(self):
        assert parse_address("127.0.0.1:8000") == ("127.0.0.1", 8000)
        assert format_address("127.0.0.1", 8000) == "127.0.0.1:8000"

    @pytest.mark.parametrize("bad", ["localhost", "1.2.3.4:", ":99", "a:b:c"])
    def test_parse_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)


class TestUdpSocket:
    def test_send_receive_roundtrip(self):
        a, b = UdpSocket(), UdpSocket()
        try:
            a.send(b"hello-udp", b.address)
            datagram = b.receive_blocking(timeout=2.0)
            assert datagram is not None
            assert datagram.payload == b"hello-udp"
            assert datagram.source == a.address
        finally:
            a.close()
            b.close()

    def test_receive_all_drains(self):
        a, b = UdpSocket(), UdpSocket()
        try:
            for i in range(5):
                a.send(bytes([i]), b.address)
            deadline = time.time() + 2.0
            collected = []
            while len(collected) < 5 and time.time() < deadline:
                collected.extend(b.receive_all())
                time.sleep(0.01)
            assert sorted(d.payload for d in collected) == [bytes([i]) for i in range(5)]
        finally:
            a.close()
            b.close()

    def test_receive_one_empty(self):
        a = UdpSocket()
        try:
            assert a.receive_one() is None
        finally:
            a.close()

    def test_oversized_datagram_rejected(self):
        a = UdpSocket()
        try:
            with pytest.raises(ValueError):
                a.send(b"x" * (MAX_DATAGRAM + 1), a.address)
        finally:
            a.close()

    def test_closed_socket_rejects_send(self):
        a = UdpSocket()
        a.close()
        with pytest.raises(RuntimeError):
            a.send(b"x", "127.0.0.1:9")

    def test_close_idempotent(self):
        a = UdpSocket()
        a.close()
        a.close()

    def test_arrival_timestamps_monotonic(self):
        a, b = UdpSocket(), UdpSocket()
        try:
            for __ in range(3):
                a.send(b"t", b.address)
                time.sleep(0.01)
            deadline = time.time() + 2.0
            stamps = []
            while len(stamps) < 3 and time.time() < deadline:
                datagram = b.receive_one()
                if datagram:
                    stamps.append(datagram.arrived_at)
            assert stamps == sorted(stamps)
        finally:
            a.close()
            b.close()

    def test_stats(self):
        a, b = UdpSocket(), UdpSocket()
        try:
            a.send(b"12345", b.address)
            assert b.receive_blocking(2.0) is not None
            assert a.stats.datagrams_sent == 1
            assert a.stats.bytes_sent == 5
            assert b.stats.datagrams_received == 1
        finally:
            a.close()
            b.close()
