"""Unit tests for repro.core.config (SyncConfig)."""

import pytest

from repro.core.config import SyncConfig


class TestDefaults:
    def test_paper_defaults(self):
        config = SyncConfig.paper_defaults()
        assert config.cfps == 60.0
        assert config.buf_frame == 6
        assert config.send_interval == 0.020
        assert config.slice_delay == 0.005
        assert config.master_slave_pacing

    def test_time_per_frame(self):
        assert SyncConfig(cfps=60).time_per_frame == pytest.approx(1 / 60)
        assert SyncConfig(cfps=50).time_per_frame == pytest.approx(0.020)

    def test_local_lag_seconds(self):
        assert SyncConfig().local_lag == pytest.approx(0.1)
        assert SyncConfig(buf_frame=0).local_lag == 0.0


class TestForLocalLag:
    def test_exact_100ms_at_60fps(self):
        config = SyncConfig.for_local_lag(0.100, cfps=60)
        assert config.buf_frame == 6

    def test_rounds_up(self):
        config = SyncConfig.for_local_lag(0.095, cfps=60)
        assert config.buf_frame == 6
        config = SyncConfig.for_local_lag(0.101, cfps=60)
        assert config.buf_frame == 7

    def test_other_frame_rate(self):
        assert SyncConfig.for_local_lag(0.100, cfps=50).buf_frame == 5


class TestValidation:
    def test_bad_cfps(self):
        with pytest.raises(ValueError):
            SyncConfig(cfps=0)

    def test_negative_buf_frame(self):
        with pytest.raises(ValueError):
            SyncConfig(buf_frame=-1)

    def test_bad_send_interval(self):
        with pytest.raises(ValueError):
            SyncConfig(send_interval=0)

    def test_negative_slice_delay(self):
        with pytest.raises(ValueError):
            SyncConfig(slice_delay=-0.1)

    def test_bad_max_inputs(self):
        with pytest.raises(ValueError):
            SyncConfig(max_inputs_per_message=0)


class TestOverrides:
    def test_with_overrides_returns_new(self):
        base = SyncConfig()
        other = base.with_overrides(buf_frame=3)
        assert other.buf_frame == 3
        assert base.buf_frame == 6

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SyncConfig().cfps = 30  # type: ignore[misc]
