"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestGames:
    def test_lists_all_games(self, capsys):
        assert main(["games"]) == 0
        out = capsys.readouterr().out
        for game in ("pong", "tankduel", "brawler", "shooter", "counter"):
            assert game in out
        assert "RC-16 ROM" in out
        assert "python" in out


class TestPlay:
    def test_play_reports_convergence(self, capsys):
        assert main(["play", "--game", "counter", "--frames", "120"]) == 0
        out = capsys.readouterr().out
        assert "replicas identical for all 120 frames" in out
        assert "site 0" in out and "site 1" in out

    def test_play_rom_game(self, capsys):
        assert main(["play", "--game", "pong", "--frames", "90"]) == 0
        assert "identical" in capsys.readouterr().out


class TestFigures:
    def test_figure1_table(self, capsys):
        assert main(["figure1", "--frames", "120"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "RTT(ms)" in out

    def test_figure2_table(self, capsys):
        assert main(["figure2", "--frames", "120"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_loss_table(self, capsys):
        assert main(["loss", "--frames", "120"]) == 0
        assert "loss" in capsys.readouterr().out


class TestDisasm:
    def test_disassembles_rom(self, capsys):
        assert main(["disasm", "pong"]) == 0
        out = capsys.readouterr().out
        assert "LDI" in out
        assert "YIELD" in out

    def test_python_game_rejected(self, capsys):
        assert main(["disasm", "brawler"]) == 1
        assert "pure-Python" in capsys.readouterr().err


class TestMovies:
    def test_record_then_replay(self, tmp_path, capsys):
        movie_path = str(tmp_path / "m.json")
        assert main(
            ["record", "--game", "counter", "--frames", "100", "-o", movie_path]
        ) == 0
        assert "recorded 100 frames" in capsys.readouterr().out
        assert main(["replay", movie_path]) == 0
        out = capsys.readouterr().out
        assert "replayed 100 frames" in out
        assert "checkpoints verified" in out


class TestParser:
    def test_no_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
