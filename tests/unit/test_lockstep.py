"""Unit tests for repro.core.lockstep — Algorithm 2 line by line."""

import pytest

from repro.core.config import SyncConfig
from repro.core.inputs import InputAssignment
from repro.core.lockstep import LockstepSync
from repro.core.messages import Sync


def make_pair(buf_frame=6, num_sites=2, observers=0):
    config = SyncConfig(buf_frame=buf_frame)
    if observers:
        assignment = InputAssignment.with_observers(num_sites - observers, observers)
    else:
        assignment = InputAssignment.standard(num_sites)
    return [
        LockstepSync(config, site, assignment, session_id=1)
        for site in range(num_sites)
    ]


def pump(sender: LockstepSync, receiver: LockstepSync, now: float = 0.0) -> None:
    """Move one flush worth of messages from sender to receiver."""
    message = sender.build_sync_for(receiver.site_no, force=True)
    if message is not None:
        receiver.on_sync(message, arrived_at=now)


class TestLocalLagBuffering:
    """Algorithm 2, lines 1–5."""

    def test_input_lands_at_lagged_frame(self):
        a, _ = make_pair()
        a.buffer_local_input(0, 0x05)
        assert a.ibuf.get(6, 0) == 0x05
        assert a.last_rcv_frame[0] == 6

    def test_repeat_buffering_same_frame_ignored(self):
        a, _ = make_pair()
        a.buffer_local_input(0, 0x05)
        a.buffer_local_input(0, 0x07)  # line 2 guard: LastRcvFrame >= LagF
        assert a.ibuf.get(6, 0) == 0x05

    def test_foreign_bits_stripped(self):
        a, _ = make_pair()
        a.buffer_local_input(0, 0xFFFF)
        assert a.ibuf.get(6, 0) == 0x00FF  # only SET[0]

    def test_zero_buf_frame(self):
        a, _ = make_pair(buf_frame=0)
        a.buffer_local_input(0, 0x05)
        assert a.ibuf.get(0, 0) == 0x05

    def test_observer_buffers_nothing(self):
        sites = make_pair(num_sites=3, observers=1)
        observer = sites[2]
        assert observer.is_observer
        observer.buffer_local_input(0, 0xFF)
        assert len(observer.ibuf) == 0


class TestFirstFrames:
    """'For the first six frames, the exit condition is trivially satisfied
    and empty inputs are returned.'"""

    def test_first_buf_frames_deliver_empty(self):
        a, _ = make_pair()
        for frame in range(6):
            a.buffer_local_input(frame, 0xFF)
            assert a.can_deliver()
            assert a.deliver() == 0

    def test_frame_six_blocks_without_remote(self):
        a, _ = make_pair()
        for frame in range(6):
            a.buffer_local_input(frame, 0xFF)
            a.deliver()
        a.buffer_local_input(6, 0xFF)
        assert not a.can_deliver()
        assert a.waiting_on() == [1]

    def test_frame_six_unblocks_after_remote(self):
        a, b = make_pair()
        for frame in range(7):
            a.buffer_local_input(frame, 0x01)  # SET[0] bits
            b.buffer_local_input(frame, 0x0200)  # SET[1] bits
        for frame in range(6):
            a.deliver()
        pump(b, a)
        assert a.can_deliver()
        merged = a.deliver()
        assert merged == 0x0201  # both pads' frame-0 inputs (lagged to 6)


class TestMessageExchange:
    """Lines 7–19."""

    def test_build_sync_carries_unacked_window(self):
        a, b = make_pair()
        for frame in range(3):
            a.buffer_local_input(frame, frame + 1)
        message = a.build_sync_for(1)
        assert message.first_frame == 6
        assert message.inputs == [1, 2, 3]
        assert message.acks == a.last_rcv_frame

    def test_no_news_returns_none(self):
        a, _ = make_pair()
        first = a.build_sync_for(1, force=True)
        assert first is not None
        assert a.build_sync_for(1) is None  # nothing changed since

    def test_force_always_sends(self):
        a, _ = make_pair()
        a.build_sync_for(1, force=True)
        assert a.build_sync_for(1, force=True) is not None

    def test_ack_advances_peer_window(self):
        a, b = make_pair()
        for frame in range(3):
            a.buffer_local_input(frame, 1)
            b.buffer_local_input(frame, 1)
        pump(a, b)
        assert b.last_rcv_frame[0] == 8
        pump(b, a)  # carries b's ack of a's inputs
        assert a.last_ack_frame[1] == 8
        # subsequent window starts after the ack
        message = a.build_sync_for(1, force=True)
        assert message.first_frame == 9

    def test_duplicate_inputs_counted_once(self):
        a, b = make_pair()
        a.buffer_local_input(0, 1)
        message = a.build_sync_for(1, force=True)
        b.on_sync(message, 0.0)
        b.on_sync(message, 0.1)  # duplicate datagram
        assert b.stats.duplicate_inputs_received >= 1
        assert b.ibuf.get(6, 0) == 1

    def test_gapped_window_does_not_advance_cursor(self):
        a, b = make_pair()
        # Hand-craft a window starting beyond contiguity.
        message = Sync(0, 1, acks=[5, 5], first_frame=20, inputs=[1, 2])
        b.on_sync(message, 0.0)
        assert b.last_rcv_frame[0] == 5  # guard rejected the gap

    def test_wrong_session_ignored(self):
        a, b = make_pair()
        a.buffer_local_input(0, 1)
        message = a.build_sync_for(1, force=True)
        message.session_id = 999
        b.on_sync(message, 0.0)
        assert b.last_rcv_frame[0] == 5

    def test_message_from_self_ignored(self):
        a, _ = make_pair()
        message = Sync(0, 1, acks=[5, 5], first_frame=6, inputs=[1])
        a.on_sync(message, 0.0)  # sender == own site
        assert a.stats.sync_messages_received == 0

    def test_out_of_range_sender_ignored(self):
        a, _ = make_pair()
        message = Sync(9, 1, acks=[5, 5], first_frame=6, inputs=[1])
        a.on_sync(message, 0.0)
        assert a.stats.sync_messages_received == 0

    def test_received_message_marks_ack_dirty(self):
        a, b = make_pair()
        a.buffer_local_input(0, 1)
        pump(a, b)
        # b has no inputs of its own but must re-ack.
        reply = b.build_sync_for(0)
        assert reply is not None
        assert reply.acks[0] == 6

    def test_max_inputs_per_message_caps_window(self):
        config = SyncConfig(max_inputs_per_message=5)
        assignment = InputAssignment.standard(2)
        a = LockstepSync(config, 0, assignment, session_id=1)
        for frame in range(20):
            a.buffer_local_input(frame, 1)
        message = a.build_sync_for(1)
        assert len(message.inputs) == 5


class TestDelivery:
    """Lines 21–23."""

    def test_deliver_before_ready_raises(self):
        a, _ = make_pair(buf_frame=0)
        a.buffer_local_input(0, 1)
        with pytest.raises(RuntimeError):
            a.deliver()

    def test_lockstep_convergence_over_many_frames(self):
        a, b = make_pair()
        merged_a, merged_b = [], []
        for frame in range(50):
            a.buffer_local_input(frame, frame & 0xFF)
            b.buffer_local_input(frame, (frame * 3) & 0xFF)
            pump(a, b, now=frame / 60)
            pump(b, a, now=frame / 60)
            merged_a.append(a.deliver())
            merged_b.append(b.deliver())
        assert merged_a == merged_b

    def test_master_sample_tracked_on_slave(self):
        a, b = make_pair()
        a.buffer_local_input(0, 1)
        pump(a, b, now=0.123)
        assert b.master_sample == (6, 0.123)

    def test_master_has_no_master_sample(self):
        a, b = make_pair()
        b.buffer_local_input(0, 1)
        pump(b, a, now=0.5)
        assert a.master_sample is None


class TestPruning:
    def test_prune_after_deliver_and_ack(self):
        a, b = make_pair()
        for frame in range(20):
            a.buffer_local_input(frame, 1)
            b.buffer_local_input(frame, 1)
            pump(a, b)
            pump(b, a)
            a.deliver()
            b.deliver()
        # acks flow with every pump; old frames must be gone.
        assert a.ibuf.floor > 0
        assert a.stats.pruned_frames > 0

    def test_unacked_frames_retained(self):
        a, b = make_pair()
        for frame in range(20):
            a.buffer_local_input(frame, 1)
        # b never acks; a must retain everything for retransmission.
        assert a.ibuf.floor == 0
        assert a.ibuf.get(6, 0) is not None


class TestAbsentAndLateJoin:
    def test_absent_site_not_gating(self):
        sites = make_pair(num_sites=3)
        a = sites[0]
        a.mark_absent(2)
        for frame in range(7):
            a.buffer_local_input(frame, 1)
        for __ in range(6):
            a.deliver()  # the trivial local-lag frames
        # Frame 6 needs site 1's input but NOT absent site 2's.
        assert a.waiting_on() == [1]

    def test_absent_site_skipped_in_build_all(self):
        sites = make_pair(num_sites=3)
        a = sites[0]
        a.mark_absent(2)
        a.buffer_local_input(0, 1)
        messages = a.build_all(force=True)
        assert set(messages) == {1}

    def test_cannot_mark_self_absent(self):
        a, _ = make_pair()
        with pytest.raises(ValueError):
            a.mark_absent(0)

    def test_admit_after_absent(self):
        sites = make_pair(num_sites=3)
        a = sites[0]
        a.mark_absent(2)
        a.admit_site(2, 50, ack_hint=43)
        assert not a.is_absent(2)
        assert a.gate_from[2] == 50
        assert a.last_ack_frame[2] == 43
        assert a.last_rcv_frame[2] == 49  # virtual history received

    def test_admit_below_pointer_raises(self):
        sites = make_pair(num_sites=3)
        a = sites[0]
        a.mark_absent(2)
        for frame in range(10):
            a.buffer_local_input(frame, 1)
        # deliver the first lag frames (pointer advances to 6)
        for __ in range(6):
            a.deliver()
        with pytest.raises(ValueError):
            a.admit_site(2, 3)

    def test_seed_from_snapshot_pointers(self):
        a, _ = make_pair()
        a.seed_from_snapshot(100)
        assert a.ibuf_pointer == 101
        assert a.last_rcv_frame[1] == 100
        assert a.last_rcv_frame[0] == 106  # virtual own history
        assert a.last_ack_frame[1] == 106

    def test_seed_with_backlog(self):
        a, _ = make_pair()
        a.seed_from_snapshot(100, backlog=[[0], [7, 8, 9]])
        assert a.last_rcv_frame[1] == 103
        assert a.ibuf.get(101, 1) == 7
        assert a.ibuf.get(103, 1) == 9

    def test_site_out_of_range_admit(self):
        a, _ = make_pair()
        with pytest.raises(ValueError):
            a.admit_site(7, 0)

    def test_resume_pins_peer_acks_at_snapshot(self):
        # Unlike a cold join, a resume must leave the returning site's
        # window snapshot+1..snapshot+buf UNACKED: the donor never received
        # those inputs, so they have to be re-sent.
        a, _ = make_pair(buf_frame=6)
        a.resume_from_snapshot(100)
        assert a.ibuf_pointer == 101
        assert a.last_rcv_frame[0] == 100  # own real history, no virtual pad
        assert a.last_rcv_frame[1] == 100
        assert a.last_ack_frame[1] == 100  # NOT 106 as in seed_from_snapshot

    def test_resume_replayed_window_is_retransmitted(self):
        a, _ = make_pair(buf_frame=6)
        a.resume_from_snapshot(100)
        # The caller replays the unacked own window from its deterministic
        # source; the first sync to the peer must carry exactly 101..106.
        for frame in range(95, 101):
            a.buffer_local_input(frame, 1)
        message = a.build_sync_for(1, force=True)
        assert message is not None
        assert message.first_frame == 101
        assert message.last_frame == 106

    def test_resume_with_backlog_seeds_peer_inputs(self):
        a, _ = make_pair()
        a.resume_from_snapshot(100, backlog=[[0], [7, 8, 9]])
        assert a.ibuf.get(101, 1) == 7
        assert a.ibuf.get(103, 1) == 9
        assert a.last_rcv_frame[1] == 103

    def test_resume_then_peer_sync_unblocks_delivery(self):
        a, b = make_pair(buf_frame=6)
        # b is the donor: it ran normally up to the snapshot window.
        for frame in range(110):
            b.buffer_local_input(frame, 1)
        a.resume_from_snapshot(100)
        for frame in range(95, 101):
            a.buffer_local_input(frame, 1)
        assert not a.can_deliver()
        pump(b, a)  # donor retransmits its unacked window
        assert a.can_deliver()
        merged = a.deliver()
        assert merged is not None
        assert a.ibuf_pointer == 102


class TestConstruction:
    def test_bad_site_number(self):
        config = SyncConfig()
        with pytest.raises(ValueError):
            LockstepSync(config, 5, InputAssignment.standard(2))
