"""Unit tests for the RC-16 audio device."""


from repro.emulator.assembler import assemble
from repro.emulator.audio import (
    CRC_ADDRESS,
    DURATION_ADDRESS,
    FREQ_ADDRESS,
    TRIGGER_ADDRESS,
    Audio,
    Tone,
)
from repro.emulator.console import Console
from repro.emulator.memory import Memory

BEEP_ROM = """
.equ AFREQ, 0xFF10
.equ ADUR,  0xFF12
.equ ATRIG, 0xFF13
.org 0x0100
frame:
    LDI r0, 0
    LD  r1, [r0+0xFF00]   ; beep when input bit 0 is held
    CMPI r1, 0
    JZ  quiet
    LDI r2, 440
    ST  [r0+AFREQ], r2
    LDI r2, 3
    STB [r0+ADUR], r2
    STB [r0+ATRIG], r2
quiet:
    YIELD
    JMP frame
"""


class TestAudioDevice:
    def test_trigger_records_event(self):
        memory = Memory()
        audio = Audio(memory)
        memory.write_word(FREQ_ADDRESS, 440)
        memory.write_byte(DURATION_ADDRESS, 5)
        memory.write_byte(TRIGGER_ADDRESS, 1)
        assert audio.frame_events == [Tone(440, 5)]

    def test_crc_changes_per_event(self):
        memory = Memory()
        audio = Audio(memory)
        assert audio.history_crc() == 0
        memory.write_word(FREQ_ADDRESS, 440)
        memory.write_byte(TRIGGER_ADDRESS, 1)
        first = audio.history_crc()
        memory.write_byte(TRIGGER_ADDRESS, 1)
        assert audio.history_crc() != first
        assert first != 0

    def test_begin_frame_clears_presentation_events(self):
        memory = Memory()
        audio = Audio(memory)
        memory.write_byte(TRIGGER_ADDRESS, 1)
        audio.begin_frame()
        assert audio.frame_events == []

    def test_tone_describe(self):
        assert Tone(440, 5).describe() == "440Hz x5f"


class TestConsoleIntegration:
    def test_program_can_beep(self):
        console = Console(assemble(BEEP_ROM), name="beeper")
        console.step(0)
        assert console.audio.frame_events == []
        console.step(1)
        assert console.audio.frame_events == [Tone(440, 3)]
        console.step(0)
        assert console.audio.frame_events == []

    def test_audio_history_in_checksum(self):
        """Two consoles differing only in audio history must not check out
        equal — audio is replicated state (§2's virtual audio module)."""
        quiet = Console(assemble(BEEP_ROM), name="beeper")
        noisy = Console(assemble(BEEP_ROM), name="beeper")
        quiet.step(0)
        noisy.step(1)  # beeps
        quiet.step(0)
        noisy.step(0)
        # Same video, same variables — but different audio history.
        assert quiet.checksum() != noisy.checksum()

    def test_audio_history_in_savestate(self):
        console = Console(assemble(BEEP_ROM), name="beeper")
        console.step(1)
        crc = console.audio.history_crc()
        other = Console(assemble(BEEP_ROM), name="beeper")
        other.load_state(console.save_state())
        assert other.audio.history_crc() == crc

    def test_pong_beeps_on_score(self):
        from repro.emulator.roms.pong import build_pong

        pong = build_pong()
        beeped = False
        for __ in range(1500):
            pong.step(0)
            if pong.audio.frame_events:
                beeped = True
                break
        assert beeped
        assert pong.memory.dump(CRC_ADDRESS, 4) != b"\x00\x00\x00\x00"

    def test_tankduel_beeps_on_fire(self):
        from repro.emulator.roms.tankduel import build_tankduel
        from repro.core.inputs import Buttons, pack_buttons

        tank = build_tankduel()
        tank.step(0)
        tank.step(pack_buttons(0, Buttons.A))
        assert tank.audio.frame_events == [Tone(660, 2)]
