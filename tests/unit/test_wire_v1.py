"""Cross-version golden tests: the retained v1 codec vs the live v2 one.

``repro.core.wire_v1`` is the legacy fixed-width encoding, kept only as a
reference implementation.  These tests pin three contracts:

* the v1 codec still round-trips every message type (so it remains a
  trustworthy baseline for size benchmarks),
* encoding with either codec and decoding with the same codec yields the
  same message — field-for-field — so the two codecs describe the same
  protocol, only the bytes differ,
* v1 bytes arriving at a v2 site always raise :class:`DecodeError` with
  an error naming the legacy version (the HELLO-time rejection path), and
  v2 bytes are equally unreadable to a v1 site.
"""

import pytest

from repro.core.messages import (
    Bye,
    DecodeError,
    Hello,
    Ping,
    Pong,
    Resume,
    Start,
    StartAck,
    StateRequest,
    StateSnapshot,
    Sync,
    Welcome,
    decode,
)
from repro.core.wire_v1 import decode_v1, encode_v1


def sample_messages():
    """One representative instance of every wire message type."""
    return [
        Hello(1, 7, game_id=0xDEADBEEF, config_digest=0x12345678),
        Welcome(0, 7, assigned_site=1, num_sites=4),
        Start(0, 7),
        StartAck(1, 7),
        Sync(1, 7, acks=[120, 118], first_frame=119, inputs=[0, 3, 0xFFFF]),
        Sync(1, 7, acks=[120, 118], first_frame=121),  # pure ack
        Ping(1, 7, seq=42, timestamp_us=1_234_567),
        Pong(0, 7, seq=42, echo_timestamp_us=1_234_567),
        StateRequest(2, 7),
        StateSnapshot(0, 7, frame=300, state=b"\x00\x01machine", backlog=[[1, 2], []]),
        Bye(1, 7),
        Resume(1, 7, last_acked_frame=250),
    ]


class TestV1RoundTrip:
    @pytest.mark.parametrize(
        "message", sample_messages(), ids=lambda m: type(m).__name__
    )
    def test_v1_codec_round_trips(self, message):
        assert decode_v1(encode_v1(message)) == message

    @pytest.mark.parametrize(
        "message", sample_messages(), ids=lambda m: type(m).__name__
    )
    def test_codecs_agree_on_fields(self, message):
        """Same message through either codec decodes to the same message."""
        via_v1 = decode_v1(encode_v1(message))
        via_v2 = decode(message.encode())
        assert via_v1 == via_v2
        assert type(via_v1) is type(via_v2)
        assert via_v1.sender_site == via_v2.sender_site
        assert via_v1.session_id == via_v2.session_id

    def test_sync_payload_fields_survive_both_codecs(self):
        message = Sync(1, 7, acks=[120, 118], first_frame=119, inputs=[0, 3, 9])
        for codec_decode, codec_encode in ((decode_v1, encode_v1), (decode, Sync.encode)):
            twin = codec_decode(codec_encode(message))
            assert twin.acks == [120, 118]
            assert twin.first_frame == 119
            assert list(twin.inputs) == [0, 3, 9]


class TestVersionRejection:
    @pytest.mark.parametrize(
        "message", sample_messages(), ids=lambda m: type(m).__name__
    )
    def test_v1_bytes_rejected_by_v2_decoder(self, message):
        with pytest.raises(DecodeError, match="version 1"):
            decode(encode_v1(message))

    @pytest.mark.parametrize(
        "message", sample_messages(), ids=lambda m: type(m).__name__
    )
    def test_v2_bytes_rejected_by_v1_decoder(self, message):
        with pytest.raises(DecodeError):
            decode_v1(message.encode())

    def test_v1_rejection_is_an_error_not_a_misparse(self):
        """A legacy HELLO must never decode into *some* v2 message."""
        hello = Hello(1, 7, game_id=1, config_digest=2)
        raw = encode_v1(hello)
        with pytest.raises(DecodeError, match="legacy"):
            decode(raw)


class TestSizeComparison:
    def test_v2_sync_is_under_half_the_v1_size(self):
        """The headline claim: an 8-frame two-site SYNC shrinks >2x."""
        message = Sync(
            0, 1, acks=[100, 95], first_frame=96, inputs=[1, 0, 3, 2, 1, 0, 1, 3]
        )
        v1_size = len(encode_v1(message))
        v2_size = len(message.encode())
        assert v1_size == 62  # the legacy layout, pinned
        assert v2_size < v1_size / 2

    def test_pure_ack_sync_is_tiny(self):
        message = Sync(0, 1, acks=[100, 95], first_frame=101)
        assert len(message.encode()) <= 10
        assert len(encode_v1(message)) == 30
