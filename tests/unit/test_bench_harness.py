"""The benchmark harness itself is tier-1 tested (numbers are not).

The real benchmark run is manual (``python benchmarks/run_bench.py``);
these tests only guarantee it cannot rot: the measurement helpers return
sane values at smoke sizes, the JSON file round-trips, and the CLI's
``--quick`` path executes end to end.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.emulator.machine import create_game
from repro.metrics.bench import (
    ROM_FPS_BASELINE,
    SEED_BASELINE,
    bench_filename,
    check_block_fps,
    load_bench_history,
    measure_block_stats,
    measure_game_fps,
    measure_snapshot_costs,
    time_call,
    verify_block_parity,
    write_bench_json,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def test_time_call_returns_positive_seconds():
    assert 0 < time_call(lambda: sum(range(100)), repeats=2, inner=5) < 1.0


def test_measure_game_fps_smoke():
    fps = measure_game_fps("counter", frames=30, repeats=1)
    assert fps > 0


def test_verify_block_parity_passes():
    verify_block_parity("pong", frames=20)  # must not raise


def test_verify_block_parity_detects_drift(monkeypatch):
    from repro.emulator.cpu import Cpu

    # A block loop that executes nothing is the bluntest semantic drift.
    monkeypatch.setattr(Cpu, "run_frame_blocks", lambda self, budget: 0)
    with pytest.raises(AssertionError, match="diverged"):
        verify_block_parity("pong", frames=5)


def test_measure_block_stats_counts_compiles():
    stats = measure_block_stats("pong", frames=30)
    assert stats["blocks_compiled"] > 0
    assert stats["block_hits"] > 0


def test_check_block_fps_gate():
    passing = {name: fps for name, fps in ROM_FPS_BASELINE.items()}
    assert check_block_fps(passing) == []
    failing = {name: fps * 0.5 for name, fps in ROM_FPS_BASELINE.items()}
    problems = check_block_fps(failing)
    assert len(problems) == len(ROM_FPS_BASELINE)
    assert check_block_fps({}) != []  # missing measurements also fail


def test_measure_snapshot_costs_console_reports_delta():
    costs = measure_snapshot_costs(create_game("pong"), repeats=1)
    for key in ("save_us", "load_us", "checksum_cold_us", "checksum_warm_us"):
        assert costs[key] > 0
    # The console tracks pages, so the delta metrics must be present and
    # a steady-state delta must be far smaller than a full savestate.
    assert costs["delta_bytes"] < costs["full_state_bytes"] / 4


def test_measure_snapshot_costs_python_game_skips_delta():
    costs = measure_snapshot_costs(create_game("brawler"), repeats=1)
    assert "delta_roundtrip_us" not in costs


def test_write_and_load_bench_json(tmp_path):
    path = write_bench_json({"game_fps": {"pong": 1.0}}, directory=str(tmp_path))
    assert os.path.basename(path) == bench_filename()
    payload = json.loads(open(path).read())
    assert payload["schema"] == 1
    assert payload["baseline"] == SEED_BASELINE
    assert payload["results"]["game_fps"]["pong"] == 1.0
    history = load_bench_history(str(tmp_path))
    assert len(history) == 1 and history[0] == payload


def test_run_bench_quick_cli(tmp_path):
    """End-to-end smoke: the CLI runs and writes a valid result file."""
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
    proc = subprocess.run(
        [
            sys.executable,
            os.path.join(REPO_ROOT, "benchmarks", "run_bench.py"),
            "--quick",
            "--out",
            str(tmp_path),
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert "RC-16 benchmark" in proc.stdout
    history = load_bench_history(str(tmp_path))
    assert len(history) == 1
    results = history[0]["results"]
    assert results["quick"] is True
    assert set(results["reference_fps"]) == {"pong", "tankduel", "smc"}
    assert set(results["block_fps"]) == set(results["fast_fps"]) == {
        "pong", "tankduel", "smc",
    }
    assert results["block_stats"]["pong"]["blocks_compiled"] > 0
    assert results["rollback_session"]["snapshot_syncs"] >= 0
