"""Unit tests for repro.metrics.recorder."""

import pytest

from repro.metrics.recorder import ConsistencyChecker, ConsistencyError, FrameTrace


def make_trace(site, checksums, first_frame=0, inputs=None):
    trace = FrameTrace(site, first_frame=first_frame)
    for i, checksum in enumerate(checksums):
        trace.record_begin(i / 60)
        trace.record_frame(
            inputs[i] if inputs else 0, checksum, stall=0.0, sync_adjust=0.0
        )
    return trace


class TestFrameTrace:
    def test_frame_times_are_diffs(self):
        trace = FrameTrace(0)
        for t in (0.0, 0.016, 0.034):
            trace.record_begin(t)
        assert trace.frame_times() == pytest.approx([0.016, 0.018])

    def test_frames_counts_recorded(self):
        trace = make_trace(0, [1, 2, 3])
        assert trace.frames == 3

    def test_empty_trace(self):
        trace = FrameTrace(0)
        assert trace.frame_times() == []
        assert trace.frames == 0


class TestConsistencyCheckerRecord:
    def test_matching_records_accumulate(self):
        checker = ConsistencyChecker()
        checker.record(0, 0, 0xAA)
        checker.record(1, 0, 0xAA)
        assert checker.frames_checked == 2
        assert checker.first_divergence is None

    def test_divergence_raises_with_frame(self):
        checker = ConsistencyChecker()
        checker.record(0, 7, 0xAA)
        with pytest.raises(ConsistencyError) as excinfo:
            checker.record(1, 7, 0xBB)
        assert "frame 7" in str(excinfo.value)
        assert checker.first_divergence == 7


class TestVerifyTraces:
    def test_identical_traces_pass(self):
        traces = [make_trace(0, [1, 2, 3]), make_trace(1, [1, 2, 3])]
        assert ConsistencyChecker().verify_traces(traces) == 3

    def test_checksum_divergence_detected(self):
        traces = [make_trace(0, [1, 2, 3]), make_trace(1, [1, 9, 3])]
        with pytest.raises(ConsistencyError) as excinfo:
            ConsistencyChecker().verify_traces(traces)
        assert "frame 1" in str(excinfo.value)

    def test_input_divergence_detected(self):
        traces = [
            make_trace(0, [1, 2], inputs=[5, 5]),
            make_trace(1, [1, 2], inputs=[5, 6]),
        ]
        with pytest.raises(ConsistencyError):
            ConsistencyChecker().verify_traces(traces)

    def test_offset_traces_align_on_absolute_frames(self):
        full = make_trace(0, [10, 11, 12, 13, 14])
        late = make_trace(1, [12, 13, 14], first_frame=2)
        assert ConsistencyChecker().verify_traces([full, late]) == 3

    def test_offset_divergence_detected(self):
        full = make_trace(0, [10, 11, 12, 13, 14])
        late = make_trace(1, [12, 99, 14], first_frame=2)
        with pytest.raises(ConsistencyError) as excinfo:
            ConsistencyChecker().verify_traces([full, late])
        assert "frame 3" in str(excinfo.value)

    def test_single_trace_trivially_ok(self):
        assert ConsistencyChecker().verify_traces([make_trace(0, [1])]) == 0

    def test_disjoint_windows_compare_nothing(self):
        a = make_trace(0, [1, 2], first_frame=0)
        b = make_trace(1, [9, 9], first_frame=10)
        assert ConsistencyChecker().verify_traces([a, b]) == 0

    def test_three_way_divergence(self):
        traces = [
            make_trace(0, [1, 2, 3]),
            make_trace(1, [1, 2, 3]),
            make_trace(2, [1, 2, 4]),
        ]
        with pytest.raises(ConsistencyError):
            ConsistencyChecker().verify_traces(traces)
