"""Unit tests for repro.core.messages (wire format)."""

import pytest

from repro.core.messages import (
    Bye,
    DecodeError,
    Hello,
    Ping,
    Pong,
    Resume,
    Start,
    StartAck,
    StateRequest,
    StateSnapshot,
    Sync,
    Welcome,
    decode,
)


def roundtrip(message):
    decoded = decode(message.encode())
    assert type(decoded) is type(message)
    return decoded


class TestRoundtrips:
    def test_hello(self):
        msg = roundtrip(Hello(1, 7, game_id=0xDEADBEEF, config_digest=0x1234))
        assert msg.sender_site == 1
        assert msg.session_id == 7
        assert msg.game_id == 0xDEADBEEF
        assert msg.config_digest == 0x1234

    def test_welcome(self):
        msg = roundtrip(Welcome(0, 7, assigned_site=3, num_sites=4))
        assert msg.assigned_site == 3
        assert msg.num_sites == 4

    def test_start_and_ack(self):
        assert roundtrip(Start(0, 9)).session_id == 9
        assert roundtrip(StartAck(1, 9)).sender_site == 1

    def test_sync_with_inputs(self):
        msg = roundtrip(
            Sync(1, 7, acks=[10, -1], first_frame=6, inputs=[0, 5, 0xFFFF])
        )
        assert msg.acks == [10, -1]
        assert msg.first_frame == 6
        assert msg.inputs == [0, 5, 0xFFFF]
        assert msg.last_frame == 8

    def test_sync_pure_ack(self):
        msg = roundtrip(Sync(0, 7, acks=[5, 5], first_frame=6, inputs=[]))
        assert msg.inputs == []
        assert msg.last_frame == 5  # first_frame - 1 when empty

    def test_sync_stamped_roundtrip(self):
        plain = Sync(1, 7, acks=[10, -1], first_frame=6, inputs=[0, 5, 3])
        msg = Sync(1, 7, acks=[10, -1], first_frame=6, inputs=[0, 5, 3])
        msg.annotate(93_750, 120)
        decoded = roundtrip(msg)
        assert decoded.stamp == (93_750, 120)
        assert decoded.inputs == [0, 5, 3]
        assert decoded.acks == [10, -1]
        # Two small uvarints: the annotation costs a handful of bytes.
        assert plain.stamp is None
        assert len(msg.encode()) - len(plain.encode()) <= 5

    def test_sync_stamp_requires_inputs(self):
        pure_ack = Sync(0, 7, acks=[5, 5], first_frame=6, inputs=[])
        with pytest.raises(ValueError):
            pure_ack.annotate(1000, 0)

    def test_sync_stamped_pure_ack_rejected_on_decode(self):
        # Hand-craft a stamped pure ack (the encoder refuses to build one):
        # set the stamp head flag on a pure ack and append the two tick
        # uvarints; without them the same flag is a truncation error.
        raw = bytearray(Sync(0, 7, acks=[5], first_frame=6, inputs=[]).encode())
        # body starts after magic(2) + ver/type(1) + sender(1) + session(1);
        # first body byte is svarint first_frame, second is the head byte.
        head_index = 5 + 1
        raw[head_index] |= 0x40
        with pytest.raises(DecodeError):
            decode(bytes(raw) + b"\x07\x07")  # stamp flag without inputs
        with pytest.raises(DecodeError):
            decode(bytes(raw))  # stamp flag without stamp bytes

    def test_hello_features_roundtrip(self):
        from repro.core.messages import FEATURE_TIMELINE

        msg = roundtrip(Hello(1, 7, game_id=2, config_digest=3, features=FEATURE_TIMELINE))
        assert msg.features == FEATURE_TIMELINE
        assert roundtrip(Hello(1, 7, game_id=2, config_digest=3)).features == 0

    def test_start_features_roundtrip(self):
        msg = roundtrip(Start(0, 9, features=1))
        assert msg.features == 1
        assert roundtrip(Start(0, 9)).features == 0

    def test_pong_remote_timestamp_roundtrip(self):
        extended = roundtrip(
            Pong(1, 7, seq=3, echo_timestamp_us=1000, remote_timestamp_us=2000)
        )
        assert extended.remote_timestamp_us == 2000
        plain = roundtrip(Pong(1, 7, seq=3, echo_timestamp_us=1000))
        assert plain.remote_timestamp_us is None
        # The extension is strictly trailing: a plain pong's bytes are a
        # prefix of the extended one's.
        assert extended.encode().startswith(plain.encode())

    def test_sync_negative_frames(self):
        msg = roundtrip(Sync(0, 7, acks=[-1, -1], first_frame=-1, inputs=[7]))
        assert msg.first_frame == -1

    def test_ping_pong(self):
        ping = roundtrip(Ping(0, 7, seq=3, timestamp_us=123456789))
        assert ping.seq == 3
        assert ping.timestamp_us == 123456789
        pong = roundtrip(Pong(1, 7, seq=3, echo_timestamp_us=123456789))
        assert pong.echo_timestamp_us == 123456789

    def test_state_request(self):
        assert roundtrip(StateRequest(2, 7)).sender_site == 2

    def test_state_snapshot_plain(self):
        msg = roundtrip(StateSnapshot(0, 7, frame=100, state=b"\x01\x02\x03"))
        assert msg.frame == 100
        assert msg.state == b"\x01\x02\x03"
        assert msg.backlog == []

    def test_state_snapshot_with_backlog(self):
        msg = roundtrip(
            StateSnapshot(
                0, 7, frame=100, state=b"st", backlog=[[1, 2, 3], [], [9]]
            )
        )
        assert msg.backlog == [[1, 2, 3], [], [9]]

    def test_state_snapshot_empty_state(self):
        msg = roundtrip(StateSnapshot(0, 7, frame=0, state=b""))
        assert msg.state == b""

    def test_bye(self):
        assert roundtrip(Bye(1, 7)).sender_site == 1

    def test_resume(self):
        msg = roundtrip(Resume(1, 7, last_acked_frame=120))
        assert msg.sender_site == 1
        assert msg.session_id == 7
        assert msg.last_acked_frame == 120

    def test_resume_default_cookie_is_negative(self):
        # -1 means "nothing acked yet" and must survive the signed codec.
        assert roundtrip(Resume(2, 7)).last_acked_frame == -1


class TestValidation:
    def test_short_datagram(self):
        with pytest.raises(DecodeError):
            decode(b"abc")

    def test_bad_magic(self):
        raw = bytearray(Start(0, 1).encode())
        raw[0] ^= 0xFF
        with pytest.raises(DecodeError):
            decode(bytes(raw))

    def test_bad_version(self):
        raw = bytearray(Start(0, 1).encode())
        raw[2] = 99
        with pytest.raises(DecodeError):
            decode(bytes(raw))

    def test_unknown_type(self):
        raw = bytearray(Start(0, 1).encode())
        raw[3] = 250
        with pytest.raises(DecodeError):
            decode(bytes(raw))

    def test_truncated_sync_body(self):
        raw = Sync(0, 1, acks=[1, 2], first_frame=0, inputs=[1, 2, 3]).encode()
        with pytest.raises(DecodeError):
            decode(raw[:-2])

    def test_start_with_body_rejected(self):
        raw = Start(0, 1).encode() + b"junk"
        with pytest.raises(DecodeError):
            decode(raw)

    def test_snapshot_truncated_backlog(self):
        raw = StateSnapshot(0, 1, frame=5, state=b"s", backlog=[[1, 2]]).encode()
        with pytest.raises(DecodeError):
            decode(raw[:-3])

    def test_hello_wrong_length(self):
        # One trailing byte reads as an (optional) features word, so two
        # are needed to leave genuine trailing garbage.
        raw = Hello(0, 1, 2, 3).encode() + b"xx"
        with pytest.raises(DecodeError):
            decode(raw)

    def test_hello_zero_features_must_be_omitted(self):
        raw = Hello(0, 1, 2, 3).encode() + b"\x00"
        with pytest.raises(DecodeError):
            decode(raw)

    def test_implausible_ack_count(self):
        import struct

        # Hand-craft a SYNC with a bogus ack count.
        header = struct.pack(">HBBHI", 0x5247, 1, 5, 0, 1)
        body = struct.pack(">i", 1000)
        with pytest.raises(DecodeError):
            decode(header + body)

    def test_garbage_is_decode_error_not_crash(self):
        for garbage in (b"\x00" * 20, bytes(range(64)), b"RG" + b"\xff" * 30):
            with pytest.raises(DecodeError):
                decode(garbage)
