"""Failure-domain behaviour of the sans-IO engine, driven via EngineMesh.

The liveness machinery is pure engine state — no sockets, no chaos
harness — so the deterministic mesh from ``test_engine`` is enough to
exercise every transition: healthy → degraded → suspended → resumed,
the capped-exponential backoff replacing the 20 ms pump while suspended,
the resume-deadline giving ``peer-lost``, and the handshake timeout.
"""

from repro.core.config import SyncConfig
from repro.core.engine import (
    PHASE_SUSPENDED,
    Degraded,
    PeerLost,
    Resumed,
    SiteEngine,
)
from repro.core.messages import Resume

from tests.unit.test_engine import EngineMesh, build_engines


def liveness_config(**overrides):
    """Short failure budgets so tests run in a few simulated seconds."""
    base = dict(
        slice_delay=0.0,
        soft_stall_s=0.25,
        hard_stall_s=1.0,
        resume_deadline_s=2.0,
        liveness_timeout_s=0.5,
        suspend_backoff_initial_s=0.05,
        suspend_backoff_max_s=0.4,
    )
    base.update(overrides)
    return SyncConfig(**base)


def build_pair(frames=240, **config_overrides):
    config = liveness_config(**config_overrides)
    return build_engines(frames=frames, configs=[config, config])


def effects_of(mesh, address, kind):
    return [e for e in mesh.effects[address] if isinstance(e, kind)]


def records(engine, kind):
    return [r for r in engine.runtime.events if r.kind == kind]


class TestStallEscalation:
    def test_blackout_degrades_suspends_then_heals(self):
        engines = build_pair()
        outage = (1.0, 2.8)

        def loss(src, dst, payload, now):
            return outage[0] <= now < outage[1]

        mesh = EngineMesh(engines, loss=loss)
        mesh.start()
        mesh.run(horizon=30.0)

        for site, engine in enumerate(engines):
            address = f"site{site}"
            assert engine.termination == "completed"
            # Escalation happened and was both traced and effect-reported.
            assert effects_of(mesh, address, Degraded)
            assert effects_of(mesh, address, PeerLost)
            assert records(engine, "degraded")
            assert records(engine, "suspended")
            resumed = [
                r for r in records(engine, "resumed")
                if r.detail.get("from") == PHASE_SUSPENDED
            ]
            assert resumed, "suspension must end in a resumed record"
            metrics = engine.runtime.metrics
            assert metrics.degraded_episodes.value >= 1
            assert metrics.resumes.value >= 1
            assert metrics.suspended_seconds.value > 0.0
        # After the heal the replicas converged exactly.
        traces = [engine.runtime.trace for engine in engines]
        assert list(traces[0].checksums) == list(traces[1].checksums)

    def test_soft_stall_alone_only_degrades(self):
        engines = build_pair()
        outage = (1.0, 1.5)  # longer than soft (0.25), shorter than hard (1.0)

        def loss(src, dst, payload, now):
            return outage[0] <= now < outage[1]

        mesh = EngineMesh(engines, loss=loss)
        mesh.start()
        mesh.run(horizon=30.0)
        for site, engine in enumerate(engines):
            assert engine.termination == "completed"
            assert records(engine, "degraded")
            assert not records(engine, "suspended")
            assert engine.runtime.metrics.resumes.value == 0


class TestSuspendedBackoff:
    def test_backoff_spacing_grows_to_cap(self):
        engines = build_pair(resume_deadline_s=4.0)
        blackout_start = 1.0

        def loss(src, dst, payload, now):
            return now >= blackout_start  # peer never comes back

        mesh = EngineMesh(engines, loss=loss)
        mesh.start()
        mesh.run(horizon=30.0)

        engine = engines[0]
        config = engine.runtime.config
        fires = [
            r.time for r in records(engine, "timer")
            if r.detail.get("timer") == "backoff"
        ]
        assert len(fires) >= 4
        gaps = [b - a for a, b in zip(fires, fires[1:])]
        # Exponential with ±25% jitter: later gaps dwarf the first, and no
        # gap exceeds the jittered cap.
        assert max(gaps) > 2.5 * gaps[0]
        assert max(gaps) <= config.suspend_backoff_max_s * 1.25 + 1e-9
        # The whole point: far sparser than the 20 ms pump would have been.
        suspended_for = fires[-1] - fires[0]
        assert len(fires) < suspended_for / 0.020 / 2


class TestPeerLost:
    def test_peer_never_returns_terminates_within_deadline(self):
        engines = build_pair()
        config = engines[0].runtime.config
        blackout_start = 1.0

        def loss(src, dst, payload, now):
            return now >= blackout_start

        mesh = EngineMesh(engines, loss=loss)
        mesh.start()
        # Clean termination, not a hang: both engines reach done within
        # stall detection + suspension deadline (plus scheduling slack).
        bound = (
            blackout_start
            + config.hard_stall_s
            + config.resume_deadline_s
            + 1.0
        )
        mesh.run(horizon=bound)
        for engine in engines:
            assert engine.done
            assert engine.termination == "peer-lost"
            assert not engine.frames_complete
            lost = records(engine, "peer_lost")
            assert lost and lost[-1].detail["waiting_on"]

    def test_peer_lost_effect_reports_waiting_sites(self):
        engines = build_pair()

        def loss(src, dst, payload, now):
            return now >= 1.0

        mesh = EngineMesh(engines, loss=loss)
        mesh.start()
        mesh.run(horizon=10.0)
        lost = effects_of(mesh, "site0", PeerLost)
        assert lost
        assert lost[0].waiting_on == (1,)
        assert lost[0].resume_deadline == engines[0].runtime.config.resume_deadline_s


class TestHandshakeTimeout:
    def test_lone_master_gives_up(self):
        config = liveness_config(handshake_timeout_s=0.6)
        engines = build_engines(frames=20, configs=[config, config])
        # Only the master joins the mesh; its peer never exists.
        mesh = EngineMesh(engines[:1])
        mesh.start()
        mesh.run(horizon=2.0)
        assert engines[0].termination == "handshake-timeout"
        assert not engines[0].frames_complete

    def test_lone_joiner_gives_up(self):
        config = liveness_config(handshake_timeout_s=0.6)
        engines = build_engines(frames=20, configs=[config, config])
        mesh = EngineMesh(engines[1:])
        mesh.start()
        mesh.run(horizon=2.0)
        assert engines[1].termination == "handshake-timeout"


class TestResumeAuthentication:
    def test_overclaiming_resume_is_rejected(self):
        engines = build_engines(frames=60)
        mesh = EngineMesh(engines)
        mesh.start()
        mesh.run_until(0.5)  # session running, some frames exchanged

        runtime = engines[0].runtime
        session_id = runtime.session_id
        bogus = Resume(1, session_id, last_acked_frame=10_000)
        runtime.handle_message(bogus, mesh.now, mesh.now)
        assert runtime.take_resume_request() is None
        rejects = records(engines[0], "resume_reject")
        assert rejects and rejects[-1].detail["claimed"] == 10_000

    def test_honest_resume_is_accepted(self):
        engines = build_engines(frames=60)
        mesh = EngineMesh(engines)
        mesh.start()
        mesh.run_until(0.5)

        runtime = engines[0].runtime
        claimed = runtime.lockstep.last_rcv_frame[1]  # provably held
        honest = Resume(1, runtime.session_id, last_acked_frame=claimed)
        runtime.handle_message(honest, mesh.now, mesh.now)
        assert runtime.take_resume_request() == 1

    def test_wrong_session_resume_ignored(self):
        engines = build_engines(frames=60)
        mesh = EngineMesh(engines)
        mesh.start()
        mesh.run_until(0.5)
        runtime = engines[0].runtime
        stranger = Resume(1, runtime.session_id + 99, last_acked_frame=-1)
        runtime.handle_message(stranger, mesh.now, mesh.now)
        assert runtime.take_resume_request() is None


class TestEngineSnapshot:
    def test_snapshot_carries_termination(self):
        engines = build_engines(frames=10)
        mesh = EngineMesh(engines)
        mesh.start()
        mesh.run()
        for engine in engines:
            assert engine.snapshot()["termination"] == "completed"

    def test_liveness_defaults_do_not_disturb_healthy_sessions(self):
        # Paper-default budgets (hard_stall_s=4.0) on a clean link: no
        # degraded/suspended episodes, ordinary completion.
        engines = build_engines(frames=40)
        mesh = EngineMesh(engines)
        mesh.start()
        mesh.run()
        for engine in engines:
            assert isinstance(engine, SiteEngine)
            assert engine.runtime.metrics.degraded_episodes.value == 0
            assert engine.runtime.metrics.suspended_seconds.value == 0.0
            assert not effects_of(mesh, "site0", Resumed) or True
            assert engine.termination == "completed"
