"""Unit tests for repro.core.pacing — Algorithms 3 and 4."""

import pytest

from repro.core.config import SyncConfig
from repro.core.pacing import FramePacer

TPF = 1 / 60


def make_pacer(site=0, **overrides):
    return FramePacer(SyncConfig(**overrides), site)


class TestAlgorithm3:
    """EndFrameTiming."""

    def test_fast_frame_waits_out_remainder(self):
        pacer = make_pacer()
        pacer.begin_frame(10.0, 0, None, 0.0)
        wait = pacer.end_frame(10.0 + 0.002)  # frame took 2 ms
        assert wait == pytest.approx(TPF - 0.002)
        assert pacer.adjust_time_delta == 0.0

    def test_exact_frame_no_wait(self):
        pacer = make_pacer()
        pacer.begin_frame(0.0, 0, None, 0.0)
        wait = pacer.end_frame(TPF)
        assert wait == pytest.approx(0.0)

    def test_overrun_carries_negative_adjust(self):
        pacer = make_pacer()
        pacer.begin_frame(0.0, 0, None, 0.0)
        wait = pacer.end_frame(0.030)  # 13.3 ms over
        assert wait == 0.0
        assert pacer.adjust_time_delta == pytest.approx(TPF - 0.030)
        assert pacer.stats.overruns == 1

    def test_following_frame_compensates(self):
        """A 30 ms frame followed by fast frames recovers the schedule."""
        pacer = make_pacer()
        now = 0.0
        pacer.begin_frame(now, 0, None, 0.0)
        now = 0.030
        pacer.end_frame(now)
        # Next frame executes instantly; its wait shrinks by the debt.
        pacer.begin_frame(now, 1, None, 0.0)
        wait = pacer.end_frame(now)
        assert wait == pytest.approx(2 * TPF - 0.030)

    def test_long_term_rate_is_cfps(self):
        """Alternating slow/fast frames must average to CFPS exactly."""
        pacer = make_pacer()
        now = 0.0
        begins = []
        for frame in range(100):
            pacer.begin_frame(now, frame, None, 0.0)
            begins.append(now)
            compute = 0.005 if frame % 2 else 0.020  # every other frame overruns
            now += compute
            now += pacer.end_frame(now)
        span = begins[-1] - begins[0]
        assert span / 99 == pytest.approx(TPF, rel=0.02)

    def test_end_before_begin_raises(self):
        pacer = make_pacer()
        with pytest.raises(RuntimeError):
            pacer.end_frame(0.0)

    def test_stats_accumulate(self):
        pacer = make_pacer()
        for frame in range(5):
            pacer.begin_frame(frame * TPF, frame, None, 0.0)
            pacer.end_frame(frame * TPF + 0.001)
        assert pacer.stats.frames == 5
        assert pacer.stats.total_wait > 0


class TestAlgorithm4:
    """BeginFrameTiming: master/slave rate sync."""

    def test_master_never_adjusts(self):
        pacer = make_pacer(site=0)
        adjust = pacer.begin_frame(1.0, 10, master_sample=(30, 0.9), rtt=0.05)
        assert adjust == 0.0
        assert pacer.is_master

    def test_slave_without_sample_does_not_adjust(self):
        pacer = make_pacer(site=1)
        assert pacer.begin_frame(1.0, 10, None, 0.05) == 0.0

    def test_slave_in_sync_zero_adjust(self):
        """Perfectly synchronized slave: SyncAdjustTimeDelta == 0."""
        pacer = make_pacer(site=1)
        rtt = 0.060
        # Master's input for master-frame 10 (buffered at 16) sent at t=0.5,
        # received at 0.5 + rtt/2 = 0.53.  At now, the master has advanced
        # (now - 0.5) / TPF frames beyond 10; the slave sits exactly there.
        now = 0.55
        master_frame_then = 10
        slave_frame = master_frame_then + round((now - 0.5) / TPF)
        sample = (master_frame_then + 6, 0.5 + rtt / 2)
        adjust = pacer.begin_frame(now, slave_frame, sample, rtt)
        assert adjust == pytest.approx(0.0, abs=0.002)

    def test_slave_behind_speeds_up(self):
        """Slave behind the master: negative adjust (shorter frames)."""
        pacer = make_pacer(site=1)
        sample = (16, 0.53)  # master at frame 10 at t=0.50 (rtt 0.06)
        # Slave only at frame 8 when the master should be ~13.
        adjust = pacer.begin_frame(0.55, 8, sample, 0.060)
        assert adjust < 0

    def test_slave_ahead_slows_down(self):
        pacer = make_pacer(site=1)
        sample = (16, 0.53)
        adjust = pacer.begin_frame(0.55, 20, sample, 0.060)
        assert adjust > 0

    def test_clamp_bounds_adjust(self):
        pacer = make_pacer(site=1, sync_adjust_clamp_frames=3.0)
        sample = (16, 0.53)
        adjust = pacer.begin_frame(0.55, 200, sample, 0.060)  # wildly ahead
        assert adjust == pytest.approx(3 * TPF)
        assert pacer.stats.sync_adjust_clamped == 1

    def test_no_clamp_when_disabled(self):
        pacer = make_pacer(site=1, sync_adjust_clamp_frames=None)
        sample = (16, 0.53)
        adjust = pacer.begin_frame(0.55, 200, sample, 0.060)
        assert adjust > 3 * TPF

    def test_pacing_disabled_by_config(self):
        pacer = make_pacer(site=1, master_slave_pacing=False)
        sample = (16, 0.53)
        assert pacer.begin_frame(0.55, 200, sample, 0.060) == 0.0

    def test_adjust_folds_into_adjust_time_delta(self):
        """Line 9: AdjustTimeDelta += SyncAdjustTimeDelta."""
        pacer = make_pacer(site=1)
        sample = (16, 0.53)
        adjust = pacer.begin_frame(0.55, 20, sample, 0.060)
        assert pacer.adjust_time_delta == pytest.approx(adjust)


class TestConvergence:
    def test_skewed_slave_converges_to_master_schedule(self):
        """Simulate Algorithm 4's closed loop: a slave starting 80 ms late
        catches up with the master within a few frames."""
        config = SyncConfig()
        slave = FramePacer(config, 1)
        skew = 0.080
        master_start = 0.0
        now = master_start + skew  # slave begins late
        frame = 0
        offsets = []
        for __ in range(60):
            master_frame_now = (now - master_start) / TPF
            # Sample: the master's newest input arrived essentially fresh.
            sample = (int(master_frame_now) + config.buf_frame, now)
            slave.begin_frame(now, frame, sample, 0.0)
            offsets.append(frame - master_frame_now)
            now += slave.end_frame(now)  # instant compute
            frame += 1
        # Early offset ≈ -skew/TPF ≈ -4.8 frames; final ≈ 0.
        assert offsets[0] < -3
        assert abs(offsets[-1]) < 1.0
