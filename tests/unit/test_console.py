"""Unit tests for the RC-16 console and video."""

import pytest

from repro.emulator.assembler import assemble
from repro.emulator.console import (
    Console,
    FRAME_COUNTER_ADDRESS,
    INPUT_ADDRESS,
)
from repro.emulator.machine import MachineError
from repro.emulator.video import FRAMEBUFFER_BASE, HEIGHT, WIDTH

#: Copies the input word into 0x2000 and paints pixel (0,0) each frame.
ECHO_ROM = """
.equ INPUT, 0xFF00
.equ FB,    0xE000
.org 0x0100
frame:
    LDI r0, 0
    LD  r1, [r0+INPUT]
    ST  [r0+0x2000], r1
    LDI r2, 7
    STB [r2+FB], r2
    YIELD
    JMP frame
"""


def make_console() -> Console:
    return Console(assemble(ECHO_ROM), name="echo")


class TestStep:
    def test_input_latched(self):
        console = make_console()
        console.step(0x1234)
        assert console.memory.read_word(0x2000) == 0x1234
        assert console.memory.read_word(INPUT_ADDRESS) == 0x1234

    def test_frame_counter_latched(self):
        console = make_console()
        for __ in range(3):
            console.step(0)
        assert console.memory.read_word(FRAME_COUNTER_ADDRESS) == 2
        assert console.frame == 3

    def test_negative_input_rejected(self):
        with pytest.raises(MachineError):
            make_console().step(-1)

    def test_program_draws(self):
        console = make_console()
        console.step(0)
        assert console.video.pixel(7, 0) == 7


class TestDeterminism:
    def test_same_inputs_same_checksums(self):
        a, b = make_console(), make_console()
        for frame in range(50):
            word = (frame * 2654435761) & 0xFFFF
            a.step(word)
            b.step(word)
            assert a.checksum() == b.checksum()

    def test_different_inputs_diverge(self):
        a, b = make_console(), make_console()
        a.step(1)
        b.step(2)
        assert a.checksum() != b.checksum()

    def test_reset_restores_cold_boot(self):
        console = make_console()
        boot = console.checksum()
        console.step(0xFFFF)
        console.reset()
        assert console.checksum() == boot
        assert console.frame == 0


class TestSaveState:
    def test_roundtrip_resumes_identically(self):
        a = make_console()
        for frame in range(10):
            a.step(frame)
        blob = a.save_state()
        b = make_console()
        b.load_state(blob)
        assert b.frame == a.frame
        assert b.checksum() == a.checksum()
        a.step(0x42)
        b.step(0x42)
        assert a.checksum() == b.checksum()

    def test_bad_magic_rejected(self):
        console = make_console()
        blob = bytearray(console.save_state())
        blob[0] = ord("X")
        with pytest.raises(MachineError):
            console.load_state(bytes(blob))

    def test_wrong_size_rejected(self):
        with pytest.raises(MachineError):
            make_console().load_state(b"junk")


class TestVideo:
    def test_pixel_bounds(self):
        console = make_console()
        with pytest.raises(ValueError):
            console.video.pixel(WIDTH, 0)
        with pytest.raises(ValueError):
            console.video.pixel(0, HEIGHT)

    def test_frame_bytes_size(self):
        assert len(make_console().video.frame_bytes()) == WIDTH * HEIGHT

    def test_render_text_shape(self):
        text = make_console().video.render_text()
        lines = text.splitlines()
        assert len(lines) == HEIGHT
        assert all(len(line) == WIDTH for line in lines)

    def test_checksum_tracks_framebuffer(self):
        console = make_console()
        before = console.video.checksum()
        console.memory.write_byte(FRAMEBUFFER_BASE, 5)
        assert console.video.checksum() != before
