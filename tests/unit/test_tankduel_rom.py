"""Behavioural tests for the Tank Duel ROM."""

import pytest

from repro.core.inputs import Buttons, pack_buttons
from repro.core.inputs import PadSource, RandomSource
from repro.emulator.machine import create_game
from repro.emulator.roms.tankduel import build_tankduel

# Game-variable addresses from the ROM source.
T0X, T0Y, T0DX, T0DY = 0x30, 0x32, 0x34, 0x36
T1X, T1Y = 0x38, 0x3A
B0ON, B1ON = 0x48, 0x52
SC0, SC1 = 0x54, 0x56


def word(game, address):
    return game.memory.read_word(address)


def signed(value):
    return value - 0x10000 if value & 0x8000 else value


class TestMovement:
    def test_initial_spawn_positions(self):
        game = build_tankduel()
        game.step(0)
        assert (word(game, T0X), word(game, T0Y)) == (6, 24)
        assert (word(game, T1X), word(game, T1Y)) == (57, 24)

    @pytest.mark.parametrize(
        "button, dx, dy",
        [
            (Buttons.UP, 0, -1),
            (Buttons.DOWN, 0, 1),
            (Buttons.LEFT, -1, 0),
            (Buttons.RIGHT, 1, 0),
        ],
    )
    def test_direction_moves_and_faces(self, button, dx, dy):
        game = build_tankduel()
        game.step(0)  # spawn
        x0, y0 = word(game, T0X), word(game, T0Y)
        game.step(pack_buttons(0, button))
        assert word(game, T0X) == x0 + dx
        assert word(game, T0Y) == y0 + dy
        assert signed(word(game, T0DX)) == dx
        assert signed(word(game, T0DY)) == dy

    def test_walls_clamp(self):
        game = build_tankduel()
        for __ in range(100):
            game.step(pack_buttons(0, Buttons.LEFT) | pack_buttons(1, Buttons.RIGHT))
        assert word(game, T0X) == 0
        assert word(game, T1X) == 62

    def test_score_row_protected(self):
        game = build_tankduel()
        for __ in range(100):
            game.step(pack_buttons(0, Buttons.UP))
        assert word(game, T0Y) == 2  # never enters the score bar row


class TestShells:
    def test_fire_spawns_single_shell(self):
        game = build_tankduel()
        game.step(0)
        game.step(pack_buttons(0, Buttons.A))
        assert word(game, B0ON) == 1
        game.step(pack_buttons(0, Buttons.A))  # held: still one shell
        assert word(game, B0ON) == 1

    def test_shell_expires_off_field(self):
        game = build_tankduel()
        game.step(0)
        # Face up (away from the opponent) and fire.
        game.step(pack_buttons(0, Buttons.UP))
        game.step(pack_buttons(0, Buttons.A))
        for __ in range(40):
            game.step(0)
        assert word(game, B0ON) == 0
        assert word(game, SC0) == 0

    def test_direct_hit_scores_and_respawns(self):
        game = build_tankduel()
        game.step(0)  # spawn: both tanks on row 24, facing each other
        game.step(pack_buttons(0, Buttons.A))  # fire right
        for __ in range(40):
            game.step(0)
            if word(game, SC0) == 1:
                break
        assert word(game, SC0) == 1
        assert word(game, SC1) == 0
        # Tanks respawned to their corners.
        assert (word(game, T0X), word(game, T0Y)) == (6, 24)
        assert (word(game, T1X), word(game, T1Y)) == (57, 24)

    def test_dodged_shell_misses(self):
        game = build_tankduel()
        game.step(0)
        game.step(pack_buttons(0, Buttons.A))  # shell incoming on row 24
        for __ in range(10):
            game.step(pack_buttons(1, Buttons.UP))  # tank 1 dodges upward
        for __ in range(40):
            game.step(0)
        assert word(game, SC0) == 0


class TestRobustness:
    def test_survives_random_mashing(self):
        """Regression: off-screen shell erasure once smashed the CPU stack."""
        game = build_tankduel()
        s0 = PadSource(RandomSource(7), 0)
        s1 = PadSource(RandomSource(8), 1)
        for frame in range(3000):
            game.step(s0.get(frame) | s1.get(frame))
        assert word(game, SC0) + word(game, SC1) > 0

    def test_registered_and_deterministic(self):
        a = create_game("tankduel")
        b = create_game("tankduel")
        s0 = PadSource(RandomSource(3), 0)
        s1 = PadSource(RandomSource(4), 1)
        for frame in range(400):
            w = s0.get(frame) | s1.get(frame)
            a.step(w)
            b.step(w)
        assert a.checksum() == b.checksum()

    def test_savestate_roundtrip(self):
        a = build_tankduel()
        s0 = PadSource(RandomSource(5), 0)
        for frame in range(200):
            a.step(s0.get(frame))
        b = build_tankduel()
        b.load_state(a.save_state())
        for frame in range(200, 300):
            w = s0.get(frame)
            a.step(w)
            b.step(w)
        assert a.checksum() == b.checksum()
