"""Unit tests for repro.net.netem (the link impairment model)."""

import random

import pytest

from repro.net.netem import DeliveryPlan, LinkScheduler, NetemConfig


class TestNetemConfig:
    def test_defaults_are_clean_link(self):
        config = NetemConfig()
        assert config.delay == 0.0
        assert config.loss == 0.0
        assert config.duplicate == 0.0

    def test_for_rtt_halves(self):
        assert NetemConfig.for_rtt(0.100).delay == 0.050

    def test_lan_is_submillisecond(self):
        assert NetemConfig.lan().delay < 0.001

    @pytest.mark.parametrize("field", ["loss", "duplicate", "reorder"])
    def test_probability_bounds(self, field):
        with pytest.raises(ValueError):
            NetemConfig(**{field: 1.5})
        with pytest.raises(ValueError):
            NetemConfig(**{field: -0.1})

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            NetemConfig(delay=-1.0)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            NetemConfig(jitter=-0.1)

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            NetemConfig(rate_bytes_per_s=0)

    def test_describe_mentions_set_fields(self):
        text = NetemConfig(delay=0.05, loss=0.1, duplicate=0.02).describe()
        assert "50.0ms" in text
        assert "loss=10.0%" in text
        assert "dup=2.0%" in text

    def test_frozen(self):
        config = NetemConfig()
        with pytest.raises(AttributeError):
            config.delay = 1.0  # type: ignore[misc]


class TestLinkScheduler:
    def _scheduler(self, **kwargs) -> LinkScheduler:
        return LinkScheduler(NetemConfig(**kwargs), random.Random(42))

    def test_fixed_delay(self):
        scheduler = self._scheduler(delay=0.05)
        plan = scheduler.plan(now=1.0, size=100)
        assert plan.times == [1.05]
        assert not plan.dropped

    def test_loss_one_drops_everything(self):
        scheduler = self._scheduler(loss=1.0)
        for __ in range(50):
            assert scheduler.plan(0.0, 100).dropped

    def test_loss_zero_drops_nothing(self):
        scheduler = self._scheduler(loss=0.0)
        assert not any(scheduler.plan(0.0, 100).dropped for __ in range(50))

    def test_loss_rate_approximate(self):
        scheduler = self._scheduler(loss=0.3)
        drops = sum(scheduler.plan(0.0, 100).dropped for __ in range(5000))
        assert 0.25 < drops / 5000 < 0.35

    def test_duplicate_one_always_two_copies(self):
        scheduler = self._scheduler(duplicate=1.0)
        plan = scheduler.plan(0.0, 100)
        assert len(plan.times) == 2

    def test_fifo_preserved_without_reorder(self):
        scheduler = self._scheduler(delay=0.05, jitter=0.04)
        deliveries = [scheduler.plan(t * 0.001, 100).times[0] for t in range(100)]
        assert deliveries == sorted(deliveries)

    def test_reorder_skips_delay(self):
        scheduler = self._scheduler(delay=0.5, reorder=1.0)
        plan = scheduler.plan(now=1.0, size=100)
        assert plan.times == [1.0]  # reordered packets bypass the queue

    def test_jitter_varies_delivery(self):
        scheduler = self._scheduler(delay=0.05, jitter=0.02)
        times = set()
        for __ in range(20):
            scheduler._last_delivery = float("-inf")  # isolate samples
            times.add(scheduler.plan(0.0, 100).times[0])
        assert len(times) > 1
        assert all(0.03 - 1e-9 <= t <= 0.07 + 1e-9 for t in times)

    def test_rate_limit_serializes(self):
        # 1000 B/s: each 500-byte packet takes 0.5 s on the wire.
        scheduler = self._scheduler(rate_bytes_per_s=1000.0)
        first = scheduler.plan(0.0, 500).times[0]
        second = scheduler.plan(0.0, 500).times[0]
        assert first == pytest.approx(0.5)
        assert second == pytest.approx(1.0)

    def test_rate_limit_idle_resets(self):
        scheduler = self._scheduler(rate_bytes_per_s=1000.0)
        scheduler.plan(0.0, 500)
        late = scheduler.plan(10.0, 500).times[0]
        assert late == pytest.approx(10.5)

    def test_plan_deterministic_with_same_seed(self):
        a = LinkScheduler(NetemConfig(loss=0.5, delay=0.01, jitter=0.005), random.Random(7))
        b = LinkScheduler(NetemConfig(loss=0.5, delay=0.01, jitter=0.005), random.Random(7))
        for i in range(200):
            pa = a.plan(i * 0.01, 64)
            pb = b.plan(i * 0.01, 64)
            assert pa.dropped == pb.dropped
            assert pa.times == pb.times


class ScriptedRng:
    """Feeds predetermined values to the scheduler's probability draws."""

    def __init__(self, randoms=(), uniforms=()):
        self._randoms = list(randoms)
        self._uniforms = list(uniforms)

    def random(self):
        return self._randoms.pop(0)

    def uniform(self, low, high):
        return self._uniforms.pop(0)


class TestLinkSchedulerEdges:
    """Rate-limit and reorder semantics the mainline tests don't pin."""

    def _scheduler(self, **kwargs) -> LinkScheduler:
        return LinkScheduler(NetemConfig(**kwargs), random.Random(42))

    def test_rate_token_bucket_carries_across_bursts(self):
        # The wire stays busy through _rate_free_at: a packet arriving
        # mid-transmission queues behind the previous departure, not behind
        # its own arrival time.
        scheduler = self._scheduler(rate_bytes_per_s=1000.0)
        assert scheduler.plan(0.0, 500).times[0] == pytest.approx(0.5)
        # Arrives at 0.3 while the wire is busy until 0.5: serialized.
        assert scheduler.plan(0.3, 500).times[0] == pytest.approx(1.0)
        assert scheduler._rate_free_at == pytest.approx(1.0)
        # After the wire drains, a fresh packet pays only its own time.
        assert scheduler.plan(2.0, 250).times[0] == pytest.approx(2.25)

    def test_reordered_packet_leaves_fifo_clamp_untouched(self):
        # A reordered packet bypasses the delay queue and must NOT advance
        # _last_delivery, or it would drag later "normal" packets forward.
        scheduler = self._scheduler(delay=0.5, reorder=1.0)
        plan = scheduler.plan(now=1.0, size=100)
        assert plan.times == [1.0]
        assert scheduler._last_delivery == float("-inf")

    def test_normal_packet_after_reordered_keeps_full_delay(self):
        rng = ScriptedRng(randoms=[0.0, 0.9])  # reorder, then normal
        scheduler = LinkScheduler(NetemConfig(delay=0.2, reorder=0.5), rng)
        early = scheduler.plan(0.0, 100)
        late = scheduler.plan(0.01, 100)
        assert early.times == [0.0]  # skipped the queue entirely
        assert late.times == [pytest.approx(0.21)]  # unaffected by the skip

    def test_rate_limit_applies_even_to_reordered_packets(self):
        # Reordering skips the *delay queue*, not the wire: back-to-back
        # reordered packets still serialize at the token-bucket rate.
        scheduler = self._scheduler(
            rate_bytes_per_s=1000.0, delay=0.5, reorder=1.0
        )
        assert scheduler.plan(0.0, 500).times[0] == pytest.approx(0.5)
        assert scheduler.plan(0.0, 500).times[0] == pytest.approx(1.0)

    def test_jitter_cannot_violate_fifo(self):
        # First packet draws +0.04 jitter, second draws -0.04 and would
        # land earlier; the FIFO clamp holds it at the previous delivery.
        rng = ScriptedRng(uniforms=[0.04, -0.04])
        scheduler = LinkScheduler(NetemConfig(delay=0.05, jitter=0.04), rng)
        first = scheduler.plan(0.0, 100).times[0]
        second = scheduler.plan(0.001, 100).times[0]
        assert first == pytest.approx(0.09)
        assert second == pytest.approx(first)  # clamped, not 0.011

    def test_duplicate_copies_serialize_under_rate_limit(self):
        scheduler = self._scheduler(rate_bytes_per_s=1000.0, duplicate=1.0)
        plan = scheduler.plan(0.0, 500)
        assert plan.times == [pytest.approx(0.5), pytest.approx(1.0)]


class TestDeliveryPlan:
    def test_default_empty(self):
        plan = DeliveryPlan()
        assert plan.times == []
        assert not plan.dropped
