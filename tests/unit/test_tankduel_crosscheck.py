"""Frame-exact cross-validation of the Tank Duel ROM vs its Python oracle."""

from repro.core.inputs import Buttons, PadSource, RandomSource, pack_buttons
from repro.emulator.machine import create_game

# Game-variable addresses from the ROM source.
T0X, T0Y, T0DX, T0DY = 0x30, 0x32, 0x34, 0x36
T1X, T1Y = 0x38, 0x3A
B0X, B0Y, B0ON = 0x40, 0x42, 0x48
B1X, B1Y, B1ON = 0x4A, 0x4C, 0x52
SC0, SC1 = 0x54, 0x56


def signed(value):
    return value - 0x10000 if value & 0x8000 else value


def rom_state(rom):
    memory = rom.memory
    return (
        memory.read_word(T0X), memory.read_word(T0Y),
        signed(memory.read_word(T0DX)), signed(memory.read_word(T0DY)),
        memory.read_word(T1X), memory.read_word(T1Y),
        signed(memory.read_word(B0X)), signed(memory.read_word(B0Y)),
        memory.read_word(B0ON),
        signed(memory.read_word(B1X)), signed(memory.read_word(B1Y)),
        memory.read_word(B1ON),
        memory.read_word(SC0), memory.read_word(SC1),
    )


def ref_state(ref):
    t0, t1 = ref.tanks
    s0, s1 = ref.shells
    return (
        t0.x, t0.y, t0.dx, t0.dy,
        t1.x, t1.y,
        s0.x, s0.y, int(s0.on),
        s1.x, s1.y, int(s1.on),
        ref.scores[0], ref.scores[1],
    )


def run_pair(inputs):
    rom = create_game("tankduel")
    ref = create_game("tankduel-py")
    for frame, word in enumerate(inputs):
        rom.step(word)
        ref.step(word)
        assert rom_state(rom) == ref_state(ref), f"diverged at frame {frame}"
    return rom, ref


class TestCrossValidation:
    def test_idle_trajectory(self):
        run_pair([0] * 400)

    def test_chaotic_trajectory(self):
        s0 = PadSource(RandomSource(31, toggle_p=0.15), 0)
        s1 = PadSource(RandomSource(32, toggle_p=0.15), 1)
        run_pair([s0.get(f) | s1.get(f) for f in range(1200)])

    def test_duel_with_hits(self):
        """A scripted stand-and-shoot duel: both tanks trade hits."""
        inputs = []
        for frame in range(600):
            pad0 = Buttons.A if frame % 25 == 0 else 0
            pad1 = Buttons.A if frame % 40 == 3 else 0
            inputs.append(pack_buttons(0, pad0) | pack_buttons(1, pad1))
        rom, ref = run_pair(inputs)
        assert ref.scores[0] > 0  # the duel actually produced hits

    def test_wall_hugging(self):
        inputs = [
            pack_buttons(0, Buttons.LEFT | Buttons.UP)
            | pack_buttons(1, Buttons.RIGHT | Buttons.DOWN)
        ] * 200
        __, ref = run_pair(inputs)
        assert ref.tanks[0].x == 0 and ref.tanks[0].y == 2
        assert ref.tanks[1].x == 62 and ref.tanks[1].y == 46

    def test_simultaneous_fire(self):
        """Both tanks fire at once on the same row: the ROM resolves shell 0
        first — the oracle must agree on who scores."""
        both_fire = pack_buttons(0, Buttons.A) | pack_buttons(1, Buttons.A)
        inputs = [0, both_fire] + [0] * 60
        __, ref = run_pair(inputs)
        assert sum(ref.scores) >= 1
