"""Unit: counters/gauges/histograms, aggregation, and the text exposition."""

import math

import pytest

from repro.metrics.stats import percentile, validate_quantile
from repro.obs.registry import (
    DEPTH_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Registry,
    aggregate_snapshots,
    to_prometheus,
)


class TestInstruments:
    def test_counter_increments_and_mirrors_monotonically(self):
        counter = Counter("frames")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        counter.set_total(9)
        assert counter.value == 9
        counter.set_total(3)  # mirrored totals never go backwards
        assert counter.value == 9

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("rtt_seconds")
        gauge.set(0.04)
        gauge.set(0.02)
        assert gauge.value == 0.02

    def test_histogram_counts_sum_and_extremes(self):
        hist = Histogram("depth", bounds=DEPTH_BUCKETS)
        for value in (0, 1, 1, 3, 200):
            hist.observe(value)
        assert hist.count == 5
        assert hist.total == 205
        assert hist.minimum == 0
        assert hist.maximum == 200
        # The overflow bucket caught the out-of-range sample.
        assert hist.counts[-1] == 1
        summary = hist.summary()
        assert summary["count"] == 5
        assert summary["buckets"]["+Inf"] == 1

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(1.0, 0.5))

    def test_quantile_interpolates_within_observed_range(self):
        hist = Histogram("t", bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 3.0):
            hist.observe(value)
        assert hist.quantile(0) == pytest.approx(0.5)
        assert hist.quantile(100) == pytest.approx(3.0)
        assert 0.5 <= hist.quantile(50) <= 3.0

    def test_quantile_of_empty_histogram_is_zero(self):
        assert Histogram("t").quantile(95) == 0.0


class TestQuantileValidation:
    """Satellite (a): out-of-range q raises a clear error everywhere."""

    @pytest.mark.parametrize("q", [-1, 100.5, 1e9, float("nan"), "fifty", None])
    def test_rejects_bad_q(self, q):
        with pytest.raises(ValueError, match="q must be"):
            validate_quantile(q)

    @pytest.mark.parametrize("q", [-0.001, 101])
    def test_percentile_rejects_out_of_range(self, q):
        with pytest.raises(ValueError, match="q must be"):
            percentile([1.0, 2.0, 3.0], q)

    @pytest.mark.parametrize("q", [-5, 200])
    def test_histogram_quantile_shares_the_validation(self, q):
        hist = Histogram("t")
        hist.observe(0.01)
        with pytest.raises(ValueError, match="q must be"):
            hist.quantile(q)

    def test_endpoints_still_accepted(self):
        assert validate_quantile(0) == 0.0
        assert validate_quantile(100) == 100.0
        assert percentile([1.0, 2.0], 0) == 1.0
        assert percentile([1.0, 2.0], 100) == 2.0


class TestRegistry:
    def test_creation_is_idempotent(self):
        registry = Registry({"site": "0"})
        assert registry.counter("frames") is registry.counter("frames")
        assert registry.gauge("rtt") is registry.gauge("rtt")
        assert registry.histogram("t") is registry.histogram("t")

    def test_cross_type_name_collision_rejected(self):
        registry = Registry()
        registry.counter("frames")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("frames")

    def test_histogram_bounds_must_match_on_reuse(self):
        registry = Registry()
        registry.histogram("t", bounds=(1.0, 2.0))
        with pytest.raises(ValueError, match="different bounds"):
            registry.histogram("t", bounds=(1.0, 3.0))

    def test_snapshot_shape(self):
        registry = Registry({"site": "1", "session": "2"})
        registry.counter("frames").inc(3)
        registry.gauge("rtt").set(0.04)
        registry.histogram("t").observe(0.016)
        snap = registry.snapshot()
        assert snap["labels"] == {"site": "1", "session": "2"}
        assert snap["counters"] == {"frames": 3}
        assert snap["gauges"] == {"rtt": 0.04}
        assert snap["histograms"]["t"]["count"] == 1


class TestAggregation:
    def make_snap(self, site, frames, rtt, observations):
        registry = Registry({"site": str(site)})
        registry.counter("frames").inc(frames)
        registry.gauge("rtt").set(rtt)
        hist = registry.histogram("t")
        for value in observations:
            hist.observe(value)
        return registry.snapshot()

    def test_counters_sum_and_gauges_take_worst(self):
        merged = aggregate_snapshots(
            [
                self.make_snap(0, 10, 0.02, [0.01]),
                self.make_snap(1, 7, 0.05, [0.02, 0.03]),
            ]
        )
        assert merged["counters"]["frames"] == 17
        assert merged["gauges"]["rtt"] == 0.05
        assert merged["histograms"]["t"]["count"] == 3
        assert merged["histograms"]["t"]["sum"] == pytest.approx(0.06)
        assert merged["labels"] == {"aggregated_over": "2"}


class TestPrometheusExposition:
    def test_counter_gains_total_suffix_and_labels(self):
        registry = Registry({"site": "0", "session": "1"})
        registry.counter("frames").inc(42)
        text = to_prometheus([registry.snapshot()])
        assert '# TYPE repro_frames_total counter' in text
        assert 'repro_frames_total{session="1",site="0"} 42' in text

    def test_histogram_renders_cumulative_le_buckets(self):
        registry = Registry({"site": "0"})
        hist = registry.histogram("t", bounds=(1.0, 2.0))
        for value in (0.5, 1.5, 5.0):
            hist.observe(value)
        text = to_prometheus([registry.snapshot()])
        assert 'repro_t_bucket{le="1.0",site="0"} 1' in text
        assert 'repro_t_bucket{le="2.0",site="0"} 2' in text
        assert 'repro_t_bucket{le="+Inf",site="0"} 3' in text
        assert 'repro_t_count{site="0"} 3' in text
        assert 'repro_t_sum{site="0"} 7.0' in text

    def test_help_text_rides_along(self):
        registry = Registry()
        registry.counter("frames").inc()
        text = to_prometheus(
            [registry.snapshot()], help_text={"frames": "Frames presented"}
        )
        assert "# HELP repro_frames_total Frames presented" in text

    def test_infinite_gauges_render_prometheus_style(self):
        registry = Registry()
        registry.gauge("x").set(math.inf)
        assert "repro_x +Inf" in to_prometheus([registry.snapshot()])
