"""Desync-recovery bookkeeping: digest tracking, the episode ladder, and
the recovery-extension codecs (ISSUE-10).

The protocol-level behaviour (freeze, snapshot transfer, replay, terminal
escalation) is exercised end-to-end in
``tests/integration/test_desync_recovery.py``; these tests pin the pure
bookkeeping underneath it.
"""

import zlib

import pytest

from repro.core.messages import Resume, StateDigest, StateSnapshot, decode
from repro.core.resync import DigestTracker, ResyncLadder


def roundtrip(message):
    return decode(message.encode())


class TestRecoveryCodecs:
    def test_state_digest_roundtrip(self):
        msg = roundtrip(StateDigest(1, 7, frame=119, checksum=0xDEADBEEF))
        assert msg.sender_site == 1
        assert msg.frame == 119
        assert msg.checksum == 0xDEADBEEF

    def test_resume_resync_frame_roundtrip(self):
        msg = roundtrip(Resume(1, 7, last_acked_frame=120, resync_frame=109))
        assert msg.resync_frame == 109
        assert msg.last_acked_frame == 120

    def test_plain_resume_has_no_resync_frame(self):
        # The extension is strictly trailing: old resumes decode unchanged.
        assert roundtrip(Resume(1, 7, last_acked_frame=120)).resync_frame is None

    def test_snapshot_crc_roundtrip_and_verification(self):
        state = b"\x01\x02\x03\x04"
        msg = roundtrip(
            StateSnapshot(0, 7, frame=9, state=state, state_crc=zlib.crc32(state))
        )
        assert msg.crc_ok()

    def test_snapshot_crc_detects_flipped_state_bit(self):
        state = bytearray(b"\x01\x02\x03\x04")
        good = StateSnapshot(
            0, 7, frame=9, state=bytes(state), state_crc=zlib.crc32(bytes(state))
        )
        state[2] ^= 0x10
        bad = StateSnapshot(0, 7, frame=9, state=bytes(state), state_crc=good.state_crc)
        assert good.crc_ok() and not roundtrip(bad).crc_ok()

    def test_snapshot_without_crc_is_trusted(self):
        # Pre-digest senders omit the trailer; crc_ok degrades to True so
        # the feature-gated paths interoperate.
        assert StateSnapshot(0, 7, frame=9, state=b"s").crc_ok()


class TestDigestTracker:
    def tracker(self, site=0, interval=10):
        return DigestTracker(site, interval)

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            DigestTracker(0, 0)

    def test_digest_frames_are_interval_aligned(self):
        t = self.tracker(interval=10)
        assert t.is_digest_frame(9) and t.is_digest_frame(19)
        assert not t.is_digest_frame(10)

    def test_matching_digests_advance_agreement(self):
        t = self.tracker()
        t.record_own(9, 111)
        assert t.on_peer_digest(1, 9, 111) is None
        assert t.last_agreed == 9
        assert t.agreement_caught_up()
        assert t.retain_floor() == 10

    def test_mismatch_is_a_proven_divergence(self):
        t = self.tracker()
        t.record_own(9, 111)
        t.on_peer_digest(1, 9, 111)
        t.record_own(19, 222)
        divergence = t.on_peer_digest(1, 19, 999)
        assert divergence is not None
        assert divergence.frame == 19 and divergence.agreed == 9
        assert t.max_divergent == 19
        assert not t.agreement_caught_up()

    def test_peer_ahead_settles_when_own_frame_arrives(self):
        t = self.tracker()
        assert t.on_peer_digest(1, 9, 111) is None  # stashed, not settled
        assert t.last_agreed == -1
        assert t.record_own(9, 111) == []
        assert t.last_agreed == 9

    def test_record_own_surfaces_stashed_mismatch(self):
        t = self.tracker()
        t.on_peer_digest(1, 9, 999)
        found = t.record_own(9, 111)
        assert len(found) == 1 and found[0].frame == 9

    def test_stale_peer_digest_is_ignored(self):
        t = self.tracker()
        t.record_own(9, 111)
        t.on_peer_digest(1, 9, 111)
        # A duplicate (or a re-send racing the agreement) must not re-prove.
        assert t.on_peer_digest(1, 9, 999) is None

    def test_divergent_copy_kept_for_post_restore_resettle(self):
        # The deadlock regression: the authority restores and replays while
        # the divergent peer's poisoned digest is the only copy it holds.
        # The kept copy lets the *peer's* clean re-send overwrite it; an
        # agreeing settle then drains the stash.
        t = self.tracker()
        t.record_own(9, 111)
        t.on_peer_digest(1, 9, 111)
        t.record_own(19, 222)
        assert t.on_peer_digest(1, 19, 999) is not None
        assert t.pending[1] == {19: 999}  # poisoned copy retained
        # Peer restores, replays, re-sends its clean digest for frame 19.
        assert t.on_peer_digest(1, 19, 222) is None
        assert t.last_agreed == 19
        assert t.pending[1] == {}  # agreement drained the stash

    def test_own_resettle_after_rewind_against_kept_copy(self):
        # The divergent site's half: rewind keeps the peer's (clean) stash
        # so the replay's re-recorded digests re-establish agreement
        # without any new traffic from the peer.
        t = self.tracker()
        t.record_own(9, 111)
        t.on_peer_digest(1, 9, 111)
        t.record_own(19, 666)  # corrupted state digested here
        assert t.on_peer_digest(1, 19, 222) is not None
        t.rewind(9)
        assert 19 not in t.own
        assert t.pending[1] == {19: 222}
        assert t.record_own(19, 222) == []  # replay re-records, now clean
        assert t.last_agreed == 19 and t.agreement_caught_up()

    def test_agreeing_settle_tolerates_drop_stale_race(self):
        # Settling an agreement prunes the stash via _drop_stale before
        # record_own's own cleanup runs; this must not raise (regression:
        # KeyError mid-replay killed the site process).
        t = self.tracker()
        t.on_peer_digest(1, 9, 111)
        assert t.record_own(9, 111) == []
        assert t.pending[1] == {}

    def test_own_history_and_outbox_are_bounded(self):
        t = self.tracker()
        horizon = DigestTracker.RETAIN_WINDOWS
        for window in range(3 * horizon):
            t.record_own(window * 10 + 9, window)
        assert len(t.own) == horizon
        assert len(t.outbox) == horizon  # send outage cannot grow it

    def test_peer_stash_is_bounded(self):
        t = self.tracker()
        cap = 2 * DigestTracker.RETAIN_WINDOWS
        for window in range(3 * cap):
            t.on_peer_digest(1, window * 10 + 9, window)
        assert len(t.pending[1]) == cap
        # Oldest entries were evicted first.
        assert min(t.pending[1]) == (3 * cap - cap) * 10 + 9

    def test_drain_outbox_drains_once(self):
        t = self.tracker()
        t.record_own(9, 111)
        assert t.drain_outbox() == [(9, 111)]
        assert t.drain_outbox() == []

    def test_unagreed_is_the_retransmission_set(self):
        t = self.tracker()
        t.record_own(9, 111)
        t.on_peer_digest(1, 9, 111)
        t.record_own(19, 222)
        t.record_own(29, 333)
        assert t.unagreed() == [(19, 222), (29, 333)]

    def test_rewind_drops_own_and_outbox_past_anchor(self):
        t = self.tracker()
        for frame, checksum in ((9, 1), (19, 2), (29, 3)):
            t.record_own(frame, checksum)
        t.rewind(9)
        assert list(t.own) == [9]
        assert t.outbox == [(9, 1)]


class TestResyncLadder:
    def test_episodes_within_budget_pass(self):
        ladder = ResyncLadder(max_attempts=3, window_s=60.0)
        assert ladder.begin_episode(0.0)
        assert ladder.begin_episode(1.0)
        assert ladder.begin_episode(2.0)

    def test_one_past_budget_trips_quarantine(self):
        ladder = ResyncLadder(max_attempts=3, window_s=60.0)
        for when in (0.0, 1.0, 2.0):
            assert ladder.begin_episode(when)
        assert not ladder.begin_episode(3.0)

    def test_window_slides(self):
        ladder = ResyncLadder(max_attempts=2, window_s=10.0)
        assert ladder.begin_episode(0.0)
        assert ladder.begin_episode(1.0)
        # Both prior episodes have aged out of the sliding window.
        assert ladder.begin_episode(20.0)
