"""Unit tests for lockstep's per-peer messaging layer (build_all etc.)."""


from repro.core.config import SyncConfig
from repro.core.inputs import InputAssignment
from repro.core.lockstep import LockstepSync


def make_sites(num_sites=3, buf_frame=6, observers=0):
    if observers:
        assignment = InputAssignment.with_observers(
            num_sites - observers, observers
        )
    else:
        assignment = InputAssignment.standard(num_sites)
    config = SyncConfig(buf_frame=buf_frame)
    return [
        LockstepSync(config, s, assignment, session_id=1)
        for s in range(num_sites)
    ]


class TestBuildAll:
    def test_one_message_per_peer(self):
        sites = make_sites()
        sites[0].buffer_local_input(0, 1)
        messages = sites[0].build_all(force=True)
        assert set(messages) == {1, 2}

    def test_windows_are_per_peer(self):
        """Peers with different ack states receive different windows."""
        sites = make_sites()
        a = sites[0]
        for frame in range(10):
            a.buffer_local_input(frame, 1)
        # Peer 1 acks through slot 10; peer 2 has acked nothing.
        from repro.core.messages import Sync

        ack_from_1 = Sync(1, 1, acks=[10, 5, 5], first_frame=6, inputs=[])
        a.on_sync(ack_from_1, 0.0)
        messages = a.build_all(force=True)
        assert messages[1].first_frame == 11
        assert messages[2].first_frame == 6
        assert len(messages[2].inputs) > len(messages[1].inputs)

    def test_quiet_site_sends_nothing_without_force(self):
        sites = make_sites()
        a = sites[0]
        a.build_all(force=True)  # establish baselines
        assert a.build_all() == {}

    def test_new_input_triggers_send_to_all_peers(self):
        sites = make_sites()
        a = sites[0]
        a.build_all(force=True)
        a.buffer_local_input(0, 1)
        messages = a.build_all()
        assert set(messages) == {1, 2}

    def test_ack_only_reply_goes_to_the_sender(self):
        sites = make_sites()
        a, b = sites[0], sites[1]
        b.buffer_local_input(0, 0x0100)
        a.build_all(force=True)
        message = b.build_sync_for(0, force=True)
        a.on_sync(message, 0.0)
        replies = a.build_all()
        # a owes b a fresh ack; it owes site 2 nothing new.
        assert 1 in replies
        assert replies[1].acks[1] == 6

    def test_observer_sends_pure_acks(self):
        sites = make_sites(num_sites=3, observers=1)
        observer = sites[2]
        messages = observer.build_all(force=True)
        assert set(messages) == {0, 1}
        assert all(m.inputs == [] for m in messages.values())

    def test_retransmission_repeats_unacked_window(self):
        sites = make_sites()
        a = sites[0]
        a.buffer_local_input(0, 1)
        first = a.build_sync_for(1, force=True)
        second = a.build_sync_for(1, force=True)
        assert first.first_frame == second.first_frame
        assert first.inputs == second.inputs
        assert a.stats.inputs_retransmitted >= len(second.inputs)


class TestStatsAccounting:
    def test_stats_dict_has_all_counters(self):
        stats = make_sites()[0].stats.as_dict()
        for key in (
            "local_inputs_buffered",
            "local_inputs_dropped",
            "lag_changes",
            "frames_delivered",
            "sync_messages_sent",
            "duplicate_inputs_received",
            "inputs_retransmitted",
            "pruned_frames",
        ):
            assert key in stats

    def test_messages_sent_counts_per_peer(self):
        sites = make_sites()
        a = sites[0]
        a.buffer_local_input(0, 1)
        a.build_all(force=True)
        assert a.stats.sync_messages_sent == 2  # one per peer


class TestThreeSiteDeliveryGating:
    def test_waits_for_all_players(self):
        sites = make_sites()
        a = sites[0]
        for frame in range(7):
            a.buffer_local_input(frame, 1)
        for __ in range(6):
            a.deliver()
        assert sorted(a.waiting_on()) == [1, 2]
        # Input from site 1 alone is not enough.
        from repro.core.messages import Sync

        a.on_sync(Sync(1, 1, acks=[5, 5, 5], first_frame=6, inputs=[0x0100]), 0.0)
        assert a.waiting_on() == [2]
        a.on_sync(Sync(2, 1, acks=[5, 5, 5], first_frame=6, inputs=[0x030000]), 0.0)
        assert a.can_deliver()
        assert a.deliver() == 0x030101

    def test_observer_never_gates(self):
        sites = make_sites(num_sites=3, observers=1)
        a = sites[0]
        for frame in range(7):
            a.buffer_local_input(frame, 1)
        for __ in range(6):
            a.deliver()
        assert a.waiting_on() == [1]  # only the other *player*
