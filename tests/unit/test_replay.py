"""Unit tests for repro.core.replay (input movies)."""

import pytest

from repro.core.inputs import PadSource, RandomSource
from repro.core.replay import (
    InputMovie,
    ReplayError,
    record_machine_run,
    record_session,
)
from repro.emulator.machine import create_game


def make_movie(game="counter", frames=100, seed=3):
    machine = create_game(game)
    source = PadSource(RandomSource(seed), player=0)
    return record_machine_run(machine, source, frames)


class TestRecordMachineRun:
    def test_records_all_frames(self):
        movie = make_movie(frames=100)
        assert len(movie) == 100
        assert movie.game == "counter"
        assert 0 in movie.checkpoints
        assert 99 in movie.checkpoints

    def test_requires_fresh_machine(self):
        machine = create_game("counter")
        machine.step(0)
        with pytest.raises(ReplayError):
            record_machine_run(machine, PadSource(RandomSource(1), 0), 10)


class TestReplay:
    @pytest.mark.parametrize("game", ["counter", "pong-py", "brawler", "pong"])
    def test_replay_verifies(self, game):
        movie = make_movie(game=game, frames=80)
        machine = movie.replay()
        assert machine.frame == 80
        assert machine.checksum() == movie.checkpoints[79]

    def test_replay_partial(self):
        movie = make_movie(frames=100)
        machine = movie.replay(frames=50)
        assert machine.frame == 50

    def test_tampered_inputs_detected(self):
        movie = make_movie(frames=100)
        movie.inputs[30] ^= 0x01
        with pytest.raises(ReplayError) as excinfo:
            movie.replay()
        # Divergence reported at the first checkpoint after frame 30.
        assert "frame 60" in str(excinfo.value)

    def test_replay_without_verify_ignores_tampering(self):
        movie = make_movie(frames=100)
        movie.inputs[30] ^= 0x01
        machine = movie.replay(verify=False)
        assert machine.frame == 100

    def test_first_divergence(self):
        a = make_movie(frames=50)
        b = InputMovie(game=a.game, inputs=list(a.inputs))
        assert a.first_divergence(b) is None
        b.inputs[17] ^= 0x04
        assert a.first_divergence(b) == 17
        c = InputMovie(game=a.game, inputs=a.inputs[:30])
        assert a.first_divergence(c) == 30


class TestPersistence:
    def test_json_roundtrip(self):
        movie = make_movie(frames=60)
        restored = InputMovie.from_json(movie.to_json())
        assert restored.game == movie.game
        assert restored.inputs == movie.inputs
        assert restored.checkpoints == movie.checkpoints

    def test_file_roundtrip(self, tmp_path):
        movie = make_movie(frames=60)
        path = str(tmp_path / "movie.json")
        movie.save(path)
        assert InputMovie.load(path).inputs == movie.inputs

    def test_corrupt_file_detected(self):
        text = make_movie(frames=10).to_json()
        tampered = text.replace('"inputs": [', '"inputs": [9999, ', 1)
        with pytest.raises(ReplayError):
            InputMovie.from_json(tampered)

    def test_garbage_file(self):
        with pytest.raises(ReplayError):
            InputMovie.from_json("not json at all")
        with pytest.raises(ReplayError):
            InputMovie.from_json("{}")


class TestRecordSession:
    def _session(self, frames=120):
        from repro.core.config import SyncConfig
        from repro.core.multisite import build_session, two_player_plan
        from repro.net.netem import NetemConfig

        plan = two_player_plan(
            SyncConfig.paper_defaults(),
            machine_factory=lambda: create_game("counter"),
            sources=[
                PadSource(RandomSource(1), player=0),
                PadSource(RandomSource(2), player=1),
            ],
            game_id="counter",
            max_frames=frames,
        )
        session = build_session(plan, NetemConfig.for_rtt(0.030))
        session.run(horizon=300.0)
        return session

    def test_session_movie_replays_to_same_state(self):
        session = self._session()
        movie = record_session(session)
        machine = movie.replay()
        live = session.vms[0].runtime.machine
        assert machine.checksum() == live.checksum()

    def test_movie_identical_from_either_site(self):
        session = self._session()
        movie0 = record_session(session, site=0)
        movie1 = record_session(session, site=1)
        assert movie0.first_divergence(movie1) is None
        assert movie0.checkpoints == movie1.checkpoints
