"""Unit tests for SiteRuntime and DistributedVM plumbing."""

import pytest

from repro.core.config import SyncConfig
from repro.core.inputs import InputAssignment, PadSource, RandomSource, ScriptedSource
from repro.core.messages import (
    Ping,
    Pong,
    StateRequest,
    StateSnapshot,
    Sync,
    decode,
)
from repro.core.rtt import to_micros
from repro.core.vm import SitePeer, SiteRuntime
from repro.emulator.machine import create_game


def make_runtime(site=0, num_sites=2, config=None, **kwargs):
    peers = [SitePeer(s, f"site{s}") for s in range(num_sites)]
    return SiteRuntime(
        config=config or SyncConfig.paper_defaults(),
        site_no=site,
        assignment=InputAssignment.standard(num_sites),
        machine=create_game("counter"),
        source=PadSource(RandomSource(1), player=site),
        peers=peers,
        game_id="counter",
        session_id=1,
        **kwargs,
    )


class TestHandleDatagram:
    def test_garbage_ignored(self):
        runtime = make_runtime()
        assert runtime.handle_datagram(b"\x00" * 30, 0.0, 0.0) == []
        assert runtime.handle_datagram(b"", 0.0, 0.0) == []

    def test_ping_answered_with_pong(self):
        runtime = make_runtime(site=0)
        ping = Ping(sender_site=1, session_id=1, seq=5, timestamp_us=to_micros(1.0))
        replies = runtime.handle_datagram(ping.encode(), 1.02, 1.02)
        assert len(replies) == 1
        pong, destination = replies[0]
        assert destination == "site1"
        assert isinstance(pong, Pong)
        # Replies stay as message objects; the engine's outbox encodes (and
        # possibly batches) them.  Round-trip one to prove it stays valid.
        assert decode(pong.encode()) == pong
        assert pong.seq == 5
        assert pong.echo_timestamp_us == ping.timestamp_us

    def test_ping_from_unknown_site_dropped(self):
        runtime = make_runtime()
        ping = Ping(sender_site=9, session_id=1, seq=0, timestamp_us=0)
        assert runtime.handle_datagram(ping.encode(), 0.0, 0.0) == []

    def test_pong_feeds_rtt(self):
        runtime = make_runtime()
        pong = Pong(sender_site=1, session_id=1, seq=0, echo_timestamp_us=to_micros(1.0))
        runtime.handle_datagram(pong.encode(), 1.05, 1.05)
        assert runtime.rtt.rtt == pytest.approx(0.05)

    def test_sync_message_feeds_lockstep(self):
        runtime = make_runtime(site=0)
        sync = Sync(sender_site=1, session_id=1, acks=[5, 5], first_frame=6, inputs=[0x0100])
        runtime.handle_datagram(sync.encode(), 0.5, 0.5)
        assert runtime.lockstep.last_rcv_frame[1] == 6

    def test_state_request_gated_by_flag(self):
        runtime = make_runtime(site=0)
        request = StateRequest(sender_site=1, session_id=1)
        runtime.handle_datagram(request.encode(), 0.0, 0.0)
        assert runtime.take_state_request() is None
        runtime.allow_state_requests = True
        runtime.handle_datagram(request.encode(), 0.0, 0.0)
        assert runtime.take_state_request() == 1
        assert runtime.take_state_request() is None  # consumed

    def test_snapshot_keeps_highest_frame(self):
        runtime = make_runtime(site=1)
        low = StateSnapshot(0, 1, frame=10, state=b"a")
        high = StateSnapshot(0, 1, frame=20, state=b"b")
        runtime.handle_datagram(high.encode(), 0.0, 0.0)
        runtime.handle_datagram(low.encode(), 0.0, 0.0)
        assert runtime.latest_snapshot.frame == 20


class TestOutboundHelpers:
    def test_sync_broadcast_addresses_peers(self):
        runtime = make_runtime(site=0, num_sites=3)
        runtime.get_and_buffer_input()
        batch = runtime.sync_broadcast(0.0, force=True)
        destinations = sorted(dest for __, dest in batch)
        assert destinations == ["site1", "site2"]

    def test_ping_messages_one_per_peer(self):
        runtime = make_runtime(site=0, num_sites=3)
        pings = runtime.ping_messages(1.0)
        assert len(pings) == 2

    def test_all_inputs_acked_initially_true(self):
        runtime = make_runtime()
        assert runtime.all_inputs_acked()
        runtime.get_and_buffer_input()
        assert not runtime.all_inputs_acked()


class TestFrameSteps:
    def test_begin_frame_records_trace(self):
        runtime = make_runtime()
        runtime.begin_frame(1.5)
        assert runtime.trace.begin_times == [1.5]

    def test_run_transition_advances_everything(self):
        runtime = make_runtime()
        checksum_before = runtime.machine.checksum()
        runtime.run_transition(0x0101, stall=0.001, sync_adjust=0.0)
        assert runtime.frame == 1
        assert runtime.machine.frame == 1
        assert runtime.trace.inputs == [0x0101]
        assert runtime.trace.checksums[0] != checksum_before
        assert runtime.trace.lags == [6]

    def test_scripted_source_flows_into_lockstep(self):
        runtime = make_runtime()
        runtime.source = PadSource(ScriptedSource({0: 0x3}), player=0)
        runtime.get_and_buffer_input()
        assert runtime.lockstep.ibuf.get(6, 0) == 0x3
