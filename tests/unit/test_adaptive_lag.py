"""Unit tests for adaptive local lag (slot-mapping correctness)."""

import pytest

from repro.core.config import SyncConfig
from repro.core.inputs import InputAssignment
from repro.core.lockstep import LockstepSync


def make_site(buf_frame=6, site=0):
    return LockstepSync(
        SyncConfig(buf_frame=buf_frame), site, InputAssignment.standard(2), 1
    )


class TestSlotMapping:
    def test_fixed_lag_matches_paper_mapping(self):
        site = make_site()
        for frame in range(10):
            site.buffer_local_input(frame, frame + 1)
        for frame in range(10):
            assert site.ibuf.get(frame + 6, 0) == frame + 1

    def test_growing_lag_pads_gap_with_held_input(self):
        site = make_site(buf_frame=3)
        site.buffer_local_input(0, 0x11)  # slot 3
        site.set_local_lag(6)
        site.buffer_local_input(1, 0x22)  # slot 7; slots 4-6 padded
        for slot in (4, 5, 6):
            assert site.ibuf.get(slot, 0) == 0x11  # held previous input
        assert site.ibuf.get(7, 0) == 0x22
        assert site.last_rcv_frame[0] == 7

    def test_shrinking_lag_drops_inputs_until_caught_up(self):
        site = make_site(buf_frame=6)
        site.buffer_local_input(0, 0x01)  # slot 6
        site.set_local_lag(3)
        # Frames 1..3 target slots 4..6 (< next slot 7): dropped.
        for frame in (1, 2, 3):
            site.buffer_local_input(frame, 0xFF)
        assert site.stats.local_inputs_dropped == 3
        assert site.last_rcv_frame[0] == 6
        # Frame 4 targets slot 7: the new, shorter lag is in effect.
        site.buffer_local_input(4, 0x44)
        assert site.ibuf.get(7, 0) == 0x44

    def test_mapping_is_total_after_any_lag_schedule(self):
        """No slot may ever be skipped, whatever the lag changes."""
        site = make_site(buf_frame=4)
        schedule = {5: 8, 12: 2, 20: 6, 33: 10, 40: 3}
        for frame in range(60):
            if frame in schedule:
                site.set_local_lag(schedule[frame])
            site.buffer_local_input(frame, frame & 0xFF)
        top = site.last_rcv_frame[0]
        for slot in range(4, top + 1):
            assert site.ibuf.get(slot, 0) is not None, f"slot {slot} skipped"

    def test_no_slot_filled_twice_differently(self):
        site = make_site(buf_frame=4)
        site.buffer_local_input(0, 0x01)
        site.set_local_lag(2)
        # Would target an occupied/older slot; must drop, not conflict.
        site.buffer_local_input(1, 0x02)
        assert site.stats.local_inputs_dropped == 1

    def test_lag_change_counted_once_per_change(self):
        site = make_site()
        site.set_local_lag(8)
        site.set_local_lag(8)
        site.set_local_lag(6)
        assert site.stats.lag_changes == 2

    def test_negative_lag_rejected(self):
        with pytest.raises(ValueError):
            make_site().set_local_lag(-1)

    def test_local_lag_frames_property(self):
        site = make_site()
        assert site.local_lag_frames == 6
        site.set_local_lag(9)
        assert site.local_lag_frames == 9


class TestConvergenceUnderLagChanges:
    def test_two_sites_with_independent_lag_schedules_converge(self):
        """Lag is private: arbitrary per-site schedules never desync."""
        config = SyncConfig(buf_frame=4)
        assignment = InputAssignment.standard(2)
        a = LockstepSync(config, 0, assignment, 1)
        b = LockstepSync(config, 1, assignment, 1)
        schedule_a = {10: 8, 25: 3, 40: 6}
        schedule_b = {7: 2, 30: 9}
        delivered_a, delivered_b = [], []
        for frame in range(120):
            if frame in schedule_a:
                a.set_local_lag(schedule_a[frame])
            if frame in schedule_b:
                b.set_local_lag(schedule_b[frame])
            a.buffer_local_input(frame, frame & 0xFF)
            b.buffer_local_input(frame, (frame << 8) & 0xFF00)
            for sender, receiver in ((a, b), (b, a)):
                message = sender.build_sync_for(receiver.site_no, force=True)
                if message is not None:
                    receiver.on_sync(message, frame / 60)
            while a.can_deliver() and len(delivered_a) < 100:
                delivered_a.append(a.deliver())
            while b.can_deliver() and len(delivered_b) < 100:
                delivered_b.append(b.deliver())
        assert len(delivered_a) == len(delivered_b) == 100
        assert delivered_a == delivered_b


class TestLagTunerHysteresis:
    """The live-RTT tuner (``repro.core.policy.LagTuner``) between the
    estimator and ``set_local_lag``: jitter must not oscillate the lag."""

    def make_tuner(self, **overrides):
        from repro.core.policy import LagTuner

        return LagTuner(SyncConfig(adaptive_lag=True, **overrides))

    def test_first_change_is_immediate(self):
        tuner = self.make_tuner()
        # RTT 200 ms → one-way 0.1 → ceil((0.1 + 0.035)·60) = 9 frames.
        assert tuner.propose(0.0, 0.100, current=6) == 9

    def test_no_change_proposed_at_target(self):
        tuner = self.make_tuner()
        assert tuner.propose(0.0, 0.100, current=9) is None

    def test_monotone_ramp_changes_at_most_once_per_window(self):
        tuner = self.make_tuner(adaptive_window_s=1.0)
        current = 6
        changes = []
        # RTT ramps monotonically 40→400 ms over 4 s of 20 ms samples.
        steps = 200
        for i in range(steps):
            now = i * 0.020
            one_way = (0.040 + (0.400 - 0.040) * i / steps) / 2
            proposed = tuner.propose(now, one_way, current)
            if proposed is not None:
                changes.append(now)
                current = proposed
        assert len(changes) >= 2  # the ramp does move the lag...
        # ...but never more than once per hysteresis window (the first,
        # immediate change may sit close to the second).
        for earlier, later in zip(changes[1:], changes[2:]):
            assert later - earlier >= 1.0 - 1e-9

    def test_jitter_inside_deadband_never_changes_lag(self):
        tuner = self.make_tuner(adaptive_deadband_frames=2)
        # Converge once...
        current = tuner.propose(0.0, 0.100, current=6)
        assert current == 9
        # ...then wiggle the estimate by ±1 frame's worth forever: the
        # deadband filters every proposal no matter how much time passes.
        for i in range(1, 100):
            one_way = 0.100 + (0.008 if i % 2 else -0.008)
            assert tuner.propose(i * 10.0, one_way, current) is None

    def test_clamped_to_configured_bounds(self):
        tuner = self.make_tuner()
        assert tuner.propose(0.0, 10.0, current=6) == 15  # adaptive_max_buf
        tuner = self.make_tuner(adaptive_min_buf=4)
        # Raw target would be ceil(0.035·60) = 3; the floor wins.
        assert tuner.propose(0.0, 0.0, current=6) == 4

    def test_live_rtt_path_suppresses_oscillation_end_to_end(self):
        """Session-level: jittery 200 ms RTT must not thrash the lag —
        a handful of resizes at most, not one per ping."""
        from repro.core.inputs import PadSource, RandomSource
        from repro.core.multisite import build_session, two_player_plan
        from repro.net.netem import NetemConfig
        from repro.emulator.machine import create_game

        plan = two_player_plan(
            SyncConfig(adaptive_lag=True, adaptive_window_s=2.0),
            machine_factory=lambda: create_game("counter"),
            sources=[
                PadSource(RandomSource(1), player=0),
                PadSource(RandomSource(2), player=1),
            ],
            game_id="counter",
            max_frames=300,
        )
        session = build_session(
            plan, NetemConfig.for_rtt(0.200, jitter=0.015)
        )
        session.run(horizon=300.0)
        for vm in session.vms:
            changes = vm.runtime.lockstep.stats.lag_changes
            assert 1 <= changes <= 4, f"lag thrashed: {changes} changes"


class TestEndToEndAdaptive:
    def test_adaptive_session_converges(self):
        from repro.core.inputs import PadSource, RandomSource
        from repro.core.multisite import build_session, two_player_plan
        from repro.emulator.machine import create_game
        from repro.metrics.recorder import ConsistencyChecker
        from repro.net.netem import NetemConfig

        plan = two_player_plan(
            SyncConfig(adaptive_lag=True),
            machine_factory=lambda: create_game("counter"),
            sources=[
                PadSource(RandomSource(1), player=0),
                PadSource(RandomSource(2), player=1),
            ],
            game_id="counter",
            max_frames=300,
        )
        session = build_session(plan, NetemConfig.for_rtt(0.200))
        session.run(horizon=300.0)
        traces = [vm.runtime.trace for vm in session.vms]
        assert ConsistencyChecker().verify_traces(traces) == 300
        # The lag grew beyond the configured 6 frames to cover RTT 200 ms.
        assert max(traces[0].lags) > 6
