"""Unit tests for repro.metrics.timeserver."""

import pytest

from repro.metrics.timeserver import TimeServer, decode_report, encode_report
from repro.net.netem import NetemConfig
from repro.net.simnet import SimNetwork


@pytest.fixture
def network(loop):
    return SimNetwork(loop, seed=0)


class TestReportCodec:
    def test_roundtrip(self):
        assert decode_report(encode_report(1, 12345)) == (1, 12345)

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            decode_report(b"short")


class TestTimeServer:
    def test_records_arrival_times(self, loop, network):
        server = TimeServer(network)
        server.attach_site(network, "site0")
        sock = network.socket("site0")
        loop.call_at(0.1, lambda: sock.send(encode_report(0, 0), server.address))
        loop.call_at(0.2, lambda: sock.send(encode_report(0, 1), server.address))
        loop.run()
        assert server.frames_recorded(0) == 2
        times = server.arrivals[0]
        assert times[0] == pytest.approx(0.1 + server.link.delay)
        assert times[1] == pytest.approx(0.2 + server.link.delay)

    def test_frame_time_series(self, loop, network):
        server = TimeServer(network)
        server.attach_site(network, "site0")
        sock = network.socket("site0")
        for i, t in enumerate((0.0, 0.017, 0.033, 0.050)):
            loop.call_at(t, lambda i=i, t=t: sock.send(encode_report(0, i), server.address))
        loop.run()
        series = server.frame_time_series(0)
        assert len(series) == 3
        assert series[0] == pytest.approx(0.017)

    def test_synchrony_series_common_frames_only(self, loop, network):
        server = TimeServer(network)
        for site in ("site0", "site1"):
            server.attach_site(network, site)
        s0, s1 = network.socket("site0"), network.socket("site1")
        loop.call_at(0.10, lambda: s0.send(encode_report(0, 0), server.address))
        loop.call_at(0.11, lambda: s1.send(encode_report(1, 0), server.address))
        loop.call_at(0.20, lambda: s0.send(encode_report(0, 1), server.address))
        # site 1 never reports frame 1
        loop.run()
        series = server.synchrony_series(0, 1)
        assert len(series) == 1
        assert series[0] == pytest.approx(-0.01)

    def test_garbage_ignored(self, loop, network):
        server = TimeServer(network)
        server.attach_site(network, "site0")
        sock = network.socket("site0")
        loop.call_at(0.1, lambda: sock.send(b"garbage!", server.address))
        loop.run()
        assert server.arrivals == {}

    def test_custom_lan_link(self, loop, network):
        server = TimeServer(network, link=NetemConfig(delay=0.0001))
        assert server.link.delay == 0.0001
