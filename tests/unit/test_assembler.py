"""Unit tests for the RC-16 assembler."""

import pytest

from repro.emulator.assembler import AssemblyError, assemble
from repro.emulator import cpu as isa


def words(code: bytes):
    return [code[i] | (code[i + 1] << 8) for i in range(0, len(code), 2)]


class TestBasics:
    def test_default_origin(self):
        assert assemble("NOP").origin == 0x0100

    def test_explicit_origin(self):
        program = assemble(".org 0x0200\nNOP")
        assert program.origin == 0x0200
        assert program.entry == 0x0200

    def test_duplicate_org_rejected(self):
        with pytest.raises(AssemblyError):
            assemble(".org 0x100\n.org 0x200\nNOP")

    def test_encoding_no_operand(self):
        assert words(assemble("NOP\nHALT\nYIELD\nRET").code) == [
            isa.NOP << 8,
            isa.HALT << 8,
            isa.YIELD << 8,
            isa.RET << 8,
        ]

    def test_encoding_ldi(self):
        code = words(assemble("LDI r3, 0x1234").code)
        assert code == [(isa.LDI << 8) | (3 << 4), 0x1234]

    def test_encoding_rr(self):
        code = words(assemble("ADD r2, r5").code)
        assert code == [(isa.ADD << 8) | (2 << 4) | 5]

    def test_encoding_memref(self):
        code = words(assemble("LD r1, [r2+0x10]").code)
        assert code == [(isa.LD << 8) | (1 << 4) | 2, 0x10]

    def test_encoding_store_operand_order(self):
        code = words(assemble("ST [r2+4], r1").code)
        assert code == [(isa.ST << 8) | (1 << 4) | 2, 4]

    def test_negative_memref_offset(self):
        code = words(assemble("LD r1, [r2-2]").code)
        assert code[1] == 0xFFFE

    def test_bare_memref(self):
        code = words(assemble("LD r1, [r2]").code)
        assert code[1] == 0

    def test_comments_and_blank_lines(self):
        program = assemble("; header\n\nNOP ; trailing\n   \nHALT")
        assert len(program.code) == 4

    def test_case_insensitive_mnemonics(self):
        assert assemble("nop").code == assemble("NOP").code


class TestSymbols:
    def test_label_resolution(self):
        program = assemble("start:\nJMP start")
        assert words(program.code)[1] == 0x0100

    def test_forward_reference(self):
        program = assemble("JMP end\nNOP\nend:\nHALT")
        assert words(program.code)[1] == 0x0100 + 4 + 2

    def test_equ_constant(self):
        program = assemble(".equ MAGIC, 0xBEEF\nLDI r0, MAGIC")
        assert words(program.code)[1] == 0xBEEF

    def test_label_plus_offset(self):
        program = assemble("table:\n.word 1, 2, 3\nLDI r0, table+4")
        assert words(program.code)[-1] == 0x0100 + 4

    def test_label_minus_offset(self):
        program = assemble("a:\nNOP\nb:\nLDI r0, b-2")
        assert words(program.code)[-1] == 0x0100

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("x:\nNOP\nx:\nNOP")

    def test_unresolved_symbol_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("JMP nowhere")

    def test_symbols_exported(self):
        program = assemble("start:\nNOP\nlater:\nHALT")
        assert program.symbols["start"] == 0x0100
        assert program.symbols["later"] == 0x0102


class TestDirectives:
    def test_word_directive(self):
        program = assemble(".word 0x1234, 5")
        assert words(program.code) == [0x1234, 5]

    def test_byte_directive(self):
        program = assemble(".byte 1, 2, 0xFF")
        assert program.code == b"\x01\x02\xff"

    def test_equ_requires_two_operands(self):
        with pytest.raises(AssemblyError):
            assemble(".equ ONLYNAME")


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError) as excinfo:
            assemble("FROB r1")
        assert "line 1" in str(excinfo.value)

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError):
            assemble("ADD r1")

    def test_bad_register(self):
        with pytest.raises(AssemblyError):
            assemble("LDI r16, 1")

    def test_register_where_memref_expected(self):
        with pytest.raises(AssemblyError):
            assemble("LD r1, r2")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblyError) as excinfo:
            assemble("NOP\nNOP\nBOGUS")
        assert "line 3" in str(excinfo.value)
