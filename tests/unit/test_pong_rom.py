"""Cross-validation of the Pong ROM against the pure-Python reference.

Stepping both implementations with identical inputs and comparing their
game variables validates the CPU, the assembler and the ROM in one sweep —
any emulation bug shows up as a trajectory divergence.
"""


from repro.core.inputs import pack_buttons
from repro.emulator.games.pongpy import PongPy
from repro.emulator.machine import create_game
from repro.emulator.roms.pong import build_pong

# Game-variable addresses from the ROM source.
P0Y, P1Y = 0x0010, 0x0012
BALLX, BALLY = 0x0014, 0x0016
SCORE0, SCORE1 = 0x001C, 0x001E


def rom_state(console):
    memory = console.memory
    return (
        memory.read_word(P0Y),
        memory.read_word(P1Y),
        memory.read_word(BALLX),
        memory.read_word(BALLY),
        memory.read_word(SCORE0),
        memory.read_word(SCORE1),
    )


def py_state(game):
    return (
        game.paddle_y[0],
        game.paddle_y[1],
        game.ball_x,
        game.ball_y,
        game.scores[0],
        game.scores[1],
    )


def trajectory_input(frame: int) -> int:
    """A deterministic, varied input pattern hitting all pad bits."""
    pad0 = (frame // 7) % 4  # cycles through 0, UP, DOWN, UP|DOWN
    pad1 = (frame // 11) % 4
    return pack_buttons(0, pad0) | pack_buttons(1, pad1)


class TestRomMatchesReference:
    def test_idle_trajectory_identical(self):
        rom, ref = build_pong(), PongPy()
        for frame in range(800):
            rom.step(0)
            ref.step(0)
            assert rom_state(rom) == py_state(ref), f"diverged at frame {frame}"

    def test_active_trajectory_identical(self):
        rom, ref = build_pong(), PongPy()
        for frame in range(800):
            word = trajectory_input(frame)
            rom.step(word)
            ref.step(word)
            assert rom_state(rom) == py_state(ref), f"diverged at frame {frame}"

    def test_scoring_happens_in_test_window(self):
        rom = build_pong()
        for __ in range(1500):
            rom.step(0)
        state = rom_state(rom)
        assert state[4] + state[5] > 0  # someone scored


class TestRomProperties:
    def test_registry_builds_console(self):
        rom = create_game("pong")
        assert rom.name == "pong"
        rom.step(0)

    def test_rom_frame_within_cycle_budget(self):
        rom = build_pong()
        before = rom.cpu.cycles
        rom.step(0)
        first_frame = rom.cpu.cycles - before
        assert first_frame < rom.cycle_budget  # never hits the runaway cap

    def test_paddle_pixels_drawn(self):
        rom = build_pong()
        rom.step(0)
        # Paddles at columns 1 and 62, initial top y=20.
        assert rom.video.pixel(1, 24) == 7
        assert rom.video.pixel(62, 24) == 7
        assert rom.video.pixel(1, 5) == 0

    def test_ball_pixel_drawn(self):
        rom = build_pong()
        rom.step(0)
        x, y = rom.memory.read_word(BALLX), rom.memory.read_word(BALLY)
        assert rom.video.pixel(x, y) == 9

    def test_score_bar_renders(self):
        rom = build_pong()
        for __ in range(1500):
            rom.step(0)
        score0 = rom.memory.read_word(SCORE0)
        score1 = rom.memory.read_word(SCORE1)
        if score0:
            assert rom.video.pixel(0, 0) == 3
        if score1:
            assert rom.video.pixel(63, 0) == 4

    def test_savestate_roundtrip_mid_game(self):
        a = build_pong()
        for frame in range(321):
            a.step(trajectory_input(frame))
        b = build_pong()
        b.load_state(a.save_state())
        for frame in range(321, 400):
            word = trajectory_input(frame)
            a.step(word)
            b.step(word)
        assert a.checksum() == b.checksum()
        assert rom_state(a) == rom_state(b)
