"""Unit tests for repro.sim.clock."""

import pytest

from repro.sim.clock import SimClock, WallClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_custom_start(self):
        assert SimClock(start=5.5).now() == 5.5

    def test_advance_moves_forward(self):
        clock = SimClock()
        clock.advance(1.25)
        assert clock.now() == 1.25

    def test_advance_to_same_instant_is_allowed(self):
        clock = SimClock()
        clock.advance(1.0)
        clock.advance(1.0)
        assert clock.now() == 1.0

    def test_advance_backwards_raises(self):
        clock = SimClock()
        clock.advance(2.0)
        with pytest.raises(ValueError):
            clock.advance(1.0)

    def test_advance_is_cumulative(self):
        clock = SimClock()
        for step in range(1, 11):
            clock.advance(float(step))
        assert clock.now() == 10.0


class TestWallClock:
    def test_instances_share_one_timebase(self):
        # Co-hosted sites must agree on "now" exactly; each clock reads
        # the shared process epoch rather than its own creation instant.
        first = WallClock()
        second = WallClock()
        assert abs(second.now() - first.now()) < 0.05

    def test_monotonic(self):
        clock = WallClock()
        a = clock.now()
        b = clock.now()
        assert b >= a

    def test_sleep_advances_time(self):
        clock = WallClock()
        before = clock.now()
        clock.sleep(0.02)
        assert clock.now() - before >= 0.015

    def test_sleep_negative_is_noop(self):
        clock = WallClock()
        before = clock.now()
        clock.sleep(-1.0)
        assert clock.now() - before < 0.1
