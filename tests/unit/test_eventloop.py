"""Unit tests for repro.sim.eventloop."""

import pytest

from repro.sim.eventloop import SimulationError


class TestScheduling:
    def test_call_at_runs_at_time(self, loop):
        fired = []
        loop.call_at(1.0, lambda: fired.append(loop.clock.now()))
        loop.run()
        assert fired == [1.0]

    def test_call_later_relative(self, loop):
        loop.call_at(1.0, lambda: None)
        loop.run()
        fired = []
        loop.call_later(0.5, lambda: fired.append(loop.clock.now()))
        loop.run()
        assert fired == [1.5]

    def test_call_later_negative_delay_clamps_to_now(self, loop):
        fired = []
        loop.call_later(-5.0, lambda: fired.append(loop.clock.now()))
        loop.run()
        assert fired == [0.0]

    def test_scheduling_in_past_raises(self, loop):
        loop.call_at(2.0, lambda: None)
        loop.run()
        with pytest.raises(SimulationError):
            loop.call_at(1.0, lambda: None)

    def test_events_run_in_time_order(self, loop):
        order = []
        loop.call_at(3.0, lambda: order.append(3))
        loop.call_at(1.0, lambda: order.append(1))
        loop.call_at(2.0, lambda: order.append(2))
        loop.run()
        assert order == [1, 2, 3]

    def test_ties_run_in_insertion_order(self, loop):
        order = []
        for i in range(10):
            loop.call_at(1.0, lambda i=i: order.append(i))
        loop.run()
        assert order == list(range(10))

    def test_callback_may_schedule_more(self, loop):
        fired = []

        def chain(n):
            fired.append(n)
            if n < 5:
                loop.call_later(1.0, lambda: chain(n + 1))

        loop.call_at(0.0, lambda: chain(0))
        loop.run()
        assert fired == [0, 1, 2, 3, 4, 5]
        assert loop.clock.now() == 5.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, loop):
        fired = []
        handle = loop.call_at(1.0, lambda: fired.append(1))
        loop.cancel(handle)
        loop.run()
        assert fired == []

    def test_cancel_one_of_many(self, loop):
        fired = []
        loop.call_at(1.0, lambda: fired.append("a"))
        handle = loop.call_at(1.0, lambda: fired.append("b"))
        loop.call_at(1.0, lambda: fired.append("c"))
        loop.cancel(handle)
        loop.run()
        assert fired == ["a", "c"]

    def test_is_empty_skips_cancelled(self, loop):
        handle = loop.call_at(1.0, lambda: None)
        assert not loop.is_empty()
        loop.cancel(handle)
        assert loop.is_empty()


class TestRun:
    def test_run_until_horizon(self, loop):
        fired = []
        loop.call_at(1.0, lambda: fired.append(1))
        loop.call_at(5.0, lambda: fired.append(5))
        loop.run(until=2.0)
        assert fired == [1]
        assert loop.clock.now() == 2.0

    def test_run_resumes_after_horizon(self, loop):
        fired = []
        loop.call_at(5.0, lambda: fired.append(5))
        loop.run(until=2.0)
        loop.run()
        assert fired == [5]

    def test_horizon_advances_clock_even_without_events(self, loop):
        loop.run(until=7.0)
        assert loop.clock.now() == 7.0

    def test_empty_run_completes(self, loop):
        loop.run()
        assert loop.clock.now() == 0.0

    def test_max_events_guard(self, loop):
        def forever():
            loop.call_later(0.0, forever)

        loop.call_at(0.0, forever)
        with pytest.raises(SimulationError):
            loop.run(max_events=1000)

    def test_not_reentrant(self, loop):
        errors = []

        def nested():
            try:
                loop.run()
            except SimulationError as exc:
                errors.append(exc)

        loop.call_at(0.0, nested)
        loop.run()
        assert len(errors) == 1

    def test_events_processed_counter(self, loop):
        for i in range(5):
            loop.call_at(float(i), lambda: None)
        loop.run()
        assert loop.events_processed == 5

    def test_step_returns_false_when_empty(self, loop):
        assert loop.step() is False

    def test_step_runs_single_event(self, loop):
        fired = []
        loop.call_at(1.0, lambda: fired.append(1))
        loop.call_at(2.0, lambda: fired.append(2))
        assert loop.step() is True
        assert fired == [1]
