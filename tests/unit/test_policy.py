"""Unit tests for the adaptive consistency policy and switch codec."""

import pytest

from repro.core.config import SyncConfig
from repro.core.messages import (
    DecodeError,
    MODE_LOCKSTEP,
    MODE_ROLLBACK,
    SwitchAck,
    SwitchRequest,
    decode,
)
from repro.core.policy import ConsistencyPolicy


class FakeRtt:
    """Just enough of RttEstimator for the policy's reads."""

    def __init__(self, aggregate=0.050, peers=None, samples=1):
        self.rtt = aggregate
        self.samples = samples
        self._peers = peers or {}

    def peer_rtt(self, site):
        return self._peers.get(site, self.rtt)


class TestSwitchCodec:
    def test_request_roundtrip(self):
        message = SwitchRequest(
            sender_site=1, session_id=7, seq=3, mode=MODE_ROLLBACK, frame=120
        )
        again = decode(message.encode())
        assert again == message

    def test_ack_roundtrip(self):
        message = SwitchAck(sender_site=0, session_id=7, seq=3, mode=MODE_LOCKSTEP)
        assert decode(message.encode()) == message

    def test_unknown_mode_rejected(self):
        # body: seq=0, mode=2 (unknown), frame=0
        with pytest.raises(DecodeError):
            SwitchRequest._decode_body(0, 1, b"\x00\x02\x00")
        with pytest.raises(DecodeError):
            SwitchAck._decode_body(0, 1, b"\x00\x02")

    def test_trailing_bytes_rejected(self):
        body = SwitchRequest(0, 1, seq=1, mode=1, frame=5)._encode_body()
        with pytest.raises(DecodeError):
            SwitchRequest._decode_body(0, 1, body + b"\x00")


class TestConsistencyPolicy:
    def make_policy(self, **overrides):
        return ConsistencyPolicy(SyncConfig(**overrides))

    def test_no_opinion_without_samples(self):
        policy = self.make_policy()
        rtt = FakeRtt(aggregate=0.300, samples=0)
        assert policy.desired_mode(1.0, rtt, [1], MODE_LOCKSTEP) is None

    def test_degraded_link_demands_rollback(self):
        policy = self.make_policy()
        rtt = FakeRtt(peers={1: 0.200})
        assert policy.desired_mode(1.0, rtt, [1], MODE_LOCKSTEP) == MODE_ROLLBACK

    def test_recovered_link_returns_to_lockstep(self):
        policy = self.make_policy()
        rtt = FakeRtt(peers={1: 0.050})
        assert policy.desired_mode(1.0, rtt, [1], MODE_ROLLBACK) == MODE_LOCKSTEP

    def test_hysteresis_band_holds_current_mode(self):
        """Between the two thresholds neither mode is urged — a link
        hovering there never flaps."""
        policy = self.make_policy()
        rtt = FakeRtt(peers={1: 0.120})  # between 0.100 and 0.140
        assert policy.desired_mode(1.0, rtt, [1], MODE_LOCKSTEP) is None
        assert policy.desired_mode(1.0, rtt, [1], MODE_ROLLBACK) is None

    def test_worst_peer_link_decides(self):
        """One bad link is enough: lockstep blocks on the slowest peer."""
        policy = self.make_policy()
        rtt = FakeRtt(peers={1: 0.040, 2: 0.250})
        assert (
            policy.desired_mode(1.0, rtt, [1, 2], MODE_LOCKSTEP) == MODE_ROLLBACK
        )

    def test_dwell_blocks_immediate_flapping(self):
        policy = self.make_policy(policy_dwell_s=2.0)
        bad = FakeRtt(peers={1: 0.200})
        good = FakeRtt(peers={1: 0.050})
        assert policy.desired_mode(1.0, bad, [1], MODE_LOCKSTEP) == MODE_ROLLBACK
        policy.note_transition(1.0)
        # Recovered immediately — but the dwell holds rollback...
        assert policy.desired_mode(1.5, good, [1], MODE_ROLLBACK) is None
        assert policy.desired_mode(2.9, good, [1], MODE_ROLLBACK) is None
        # ...until it expires.
        assert policy.desired_mode(3.1, good, [1], MODE_ROLLBACK) == MODE_LOCKSTEP

    def test_aborted_switch_also_arms_dwell(self):
        """note_transition is called on abort too, so a partitioned site
        does not spam re-proposals each flush."""
        policy = self.make_policy(policy_dwell_s=2.0)
        bad = FakeRtt(peers={1: 0.200})
        policy.note_transition(5.0)  # an abort
        assert policy.desired_mode(6.0, bad, [1], MODE_LOCKSTEP) is None
        assert policy.desired_mode(7.1, bad, [1], MODE_LOCKSTEP) == MODE_ROLLBACK

    def test_config_rejects_inverted_thresholds(self):
        with pytest.raises(ValueError):
            SyncConfig(
                policy_rollback_above_s=0.080, policy_lockstep_below_s=0.100
            )
