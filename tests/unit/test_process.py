"""Unit tests for repro.sim.process."""

import pytest

from repro.sim.eventloop import SimulationError
from repro.sim.process import (
    Mailbox,
    ProcessCrashed,
    Sleep,
    Spawn,
    WaitMessage,
    spawn,
)


class TestSleep:
    def test_sleep_advances_time(self, loop):
        trace = []

        def proc():
            trace.append(loop.clock.now())
            yield Sleep(1.5)
            trace.append(loop.clock.now())

        spawn(loop, proc())
        loop.run()
        assert trace == [0.0, 1.5]

    def test_multiple_sleeps_accumulate(self, loop):
        trace = []

        def proc():
            for __ in range(4):
                yield Sleep(0.25)
                trace.append(loop.clock.now())

        spawn(loop, proc())
        loop.run()
        assert trace == [0.25, 0.5, 0.75, 1.0]

    def test_zero_sleep_resumes_same_instant(self, loop):
        trace = []

        def proc():
            yield Sleep(0.0)
            trace.append(loop.clock.now())

        spawn(loop, proc())
        loop.run()
        assert trace == [0.0]

    def test_interleaved_processes(self, loop):
        trace = []

        def proc(name, period):
            for __ in range(3):
                yield Sleep(period)
                trace.append((name, loop.clock.now()))

        spawn(loop, proc("a", 1.0))
        spawn(loop, proc("b", 0.4))
        loop.run()
        assert trace == [
            ("b", 0.4),
            ("b", 0.8),
            ("a", 1.0),
            ("b", 1.2000000000000002),
            ("a", 2.0),
            ("a", 3.0),
        ]


class TestResult:
    def test_result_of_finished_process(self, loop):
        def proc():
            yield Sleep(1.0)
            return 42

        handle = spawn(loop, proc())
        loop.run()
        assert handle.finished
        assert handle.result() == 42

    def test_result_before_finish_raises(self, loop):
        def proc():
            yield Sleep(1.0)

        handle = spawn(loop, proc())
        with pytest.raises(SimulationError):
            handle.result()

    def test_crash_surfaces_via_result(self, loop):
        def proc():
            yield Sleep(0.5)
            raise ValueError("boom")

        handle = spawn(loop, proc())
        loop.run()
        assert handle.finished
        with pytest.raises(ProcessCrashed) as excinfo:
            handle.result()
        assert "boom" in str(excinfo.value.__cause__)


class TestSpawnCommand:
    def test_spawn_returns_child_handle(self, loop):
        children = []

        def child():
            yield Sleep(1.0)
            return "child-done"

        def parent():
            handle = yield Spawn(child(), "kid")
            children.append(handle)
            yield Sleep(2.0)

        spawn(loop, parent())
        loop.run()
        assert len(children) == 1
        assert children[0].name == "kid"
        assert children[0].result() == "child-done"

    def test_child_runs_concurrently_with_parent(self, loop):
        trace = []

        def child():
            yield Sleep(0.5)
            trace.append(("child", loop.clock.now()))

        def parent():
            yield Spawn(child(), "kid")
            yield Sleep(1.0)
            trace.append(("parent", loop.clock.now()))

        spawn(loop, parent())
        loop.run()
        assert trace == [("child", 0.5), ("parent", 1.0)]


class TestMailbox:
    def test_poll_empty_returns_none(self, loop):
        box = Mailbox(loop)
        assert box.poll() is None

    def test_deliver_then_poll(self, loop):
        box = Mailbox(loop)
        loop.clock.advance(2.0)
        box.deliver("hello")
        envelope = box.poll()
        assert envelope.payload == "hello"
        assert envelope.arrived_at == 2.0

    def test_fifo_order(self, loop):
        box = Mailbox(loop)
        for i in range(5):
            box.deliver(i)
        assert [box.poll().payload for __ in range(5)] == [0, 1, 2, 3, 4]

    def test_drain_empties(self, loop):
        box = Mailbox(loop)
        box.deliver("a")
        box.deliver("b")
        assert [e.payload for e in box.drain()] == ["a", "b"]
        assert len(box) == 0

    def test_wait_message_resumes_on_delivery(self, loop):
        box = Mailbox(loop)
        received = []

        def consumer():
            envelope = yield WaitMessage(box)
            received.append((envelope.payload, loop.clock.now()))

        def producer():
            yield Sleep(1.0)
            box.deliver("ping")

        spawn(loop, consumer())
        spawn(loop, producer())
        loop.run()
        assert received == [("ping", 1.0)]

    def test_wait_message_immediate_when_queued(self, loop):
        box = Mailbox(loop)
        box.deliver("already-there")
        received = []

        def consumer():
            envelope = yield WaitMessage(box)
            received.append(envelope.payload)

        spawn(loop, consumer())
        loop.run()
        assert received == ["already-there"]

    def test_wait_message_timeout_returns_none(self, loop):
        box = Mailbox(loop)
        results = []

        def consumer():
            envelope = yield WaitMessage(box, timeout=0.5)
            results.append(envelope)
            results.append(loop.clock.now())

        spawn(loop, consumer())
        loop.run()
        assert results == [None, 0.5]

    def test_timeout_cancelled_when_message_arrives_first(self, loop):
        box = Mailbox(loop)
        results = []

        def consumer():
            envelope = yield WaitMessage(box, timeout=5.0)
            results.append(envelope.payload)

        def producer():
            yield Sleep(1.0)
            box.deliver("fast")

        spawn(loop, consumer())
        spawn(loop, producer())
        loop.run()
        assert results == ["fast"]
        assert loop.clock.now() < 5.0  # no dangling live timeout fired later

    def test_stale_wakeup_after_timeout_ignored(self, loop):
        """A delivery after the timeout must not resume the old wait."""
        box = Mailbox(loop)
        results = []

        def consumer():
            first = yield WaitMessage(box, timeout=0.5)
            results.append(("first", first))
            yield Sleep(2.0)
            # Message delivered at t=1.0 sits in the queue for this poll.
            results.append(("queued", box.poll().payload))

        def producer():
            yield Sleep(1.0)
            box.deliver("late")

        spawn(loop, consumer())
        spawn(loop, producer())
        loop.run()
        assert results == [("first", None), ("queued", "late")]


class TestBadCommand:
    def test_unknown_command_crashes_process(self, loop):
        def proc():
            yield "not-a-command"

        handle = spawn(loop, proc())
        loop.run()
        with pytest.raises(ProcessCrashed):
            handle.result()
