"""Property tests: the lockstep protocol converges under adversarial
message scheduling — arbitrary interleavings of drops, duplicates and
delays, driven directly at the sans-IO layer."""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import SyncConfig
from repro.core.inputs import InputAssignment
from repro.core.lockstep import LockstepSync

lockstep_settings = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_sites(num_sites=2, buf_frame=3):
    config = SyncConfig(buf_frame=buf_frame)
    assignment = InputAssignment.standard(num_sites)
    return [
        LockstepSync(config, site, assignment, session_id=1)
        for site in range(num_sites)
    ]


@lockstep_settings
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    frames=st.integers(min_value=5, max_value=60),
    drop_p=st.floats(min_value=0.0, max_value=0.6),
    dup_p=st.floats(min_value=0.0, max_value=0.4),
)
def test_two_sites_converge_under_chaos(seed, frames, drop_p, dup_p):
    """Drive both protocol instances with a chaotic scheduler: each round,
    every site buffers an input, flushes (messages may be dropped or
    duplicated), consumes deliveries in shuffled order, and delivers any
    ready frames.  Retransmission must defeat every chaos pattern."""
    rng = random.Random(seed)
    sites = make_sites()
    delivered = [[] for __ in sites]
    in_flight = []

    def flush(site):
        for peer, message in site.build_all(force=True).items():
            if rng.random() < drop_p:
                continue
            copies = 2 if rng.random() < dup_p else 1
            for __ in range(copies):
                in_flight.append((peer, message))

    frame = 0
    rounds = 0
    max_rounds = frames * 60  # generous; chaos may need many retries
    while min(len(d) for d in delivered) < frames and rounds < max_rounds:
        rounds += 1
        for site in sites:
            if frame < frames * 2:
                site.buffer_local_input(
                    frame, (frame * 37 + site.site_no) & 0xFFFF
                )
        frame += 1
        for site in sites:
            flush(site)
        rng.shuffle(in_flight)
        keep = []
        for destination, message in in_flight:
            # Deliver ~70% now, delay the rest to a later round.
            if rng.random() < 0.7:
                sites[destination].on_sync(message, arrived_at=rounds * 0.01)
            else:
                keep.append((destination, message))
        in_flight[:] = keep
        for index, site in enumerate(sites):
            while site.can_deliver() and len(delivered[index]) < frames:
                delivered[index].append(site.deliver())

    assert min(len(d) for d in delivered) >= frames, "protocol livelocked"
    assert delivered[0][:frames] == delivered[1][:frames]


@lockstep_settings
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    num_sites=st.integers(min_value=2, max_value=4),
)
def test_n_sites_same_delivery_sequence(seed, num_sites):
    rng = random.Random(seed)
    sites = make_sites(num_sites=num_sites)
    frames = 25
    delivered = [[] for __ in sites]
    for frame in range(frames * 3):
        for site in sites:
            site.buffer_local_input(frame, (frame + site.site_no * 7) & 0xFF)
        messages = []
        for site in sites:
            for peer, message in site.build_all(force=True).items():
                messages.append((peer, message))
        rng.shuffle(messages)
        for destination, message in messages:
            if rng.random() < 0.85:  # some loss
                sites[destination].on_sync(message, 0.0)
        for index, site in enumerate(sites):
            while site.can_deliver() and len(delivered[index]) < frames:
                delivered[index].append(site.deliver())
        if min(len(d) for d in delivered) >= frames:
            break
    sequences = {tuple(d[:frames]) for d in delivered}
    assert len(sequences) == 1


@lockstep_settings
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_acks_eventually_allow_pruning(seed):
    rng = random.Random(seed)
    sites = make_sites()
    for frame in range(120):
        for site in sites:
            site.buffer_local_input(frame, frame & 0xFF)
        for site in sites:
            for peer, message in site.build_all(force=True).items():
                if rng.random() < 0.9:
                    sites[peer].on_sync(message, 0.0)
        for site in sites:
            while site.can_deliver() and site.ibuf_pointer <= frame:
                site.deliver()
    # One final clean exchange ensures acks land.
    for __ in range(3):
        for site in sites:
            for peer, message in site.build_all(force=True).items():
                sites[peer].on_sync(message, 0.0)
    assert all(site.ibuf.floor > 0 for site in sites)
    assert all(len(site.ibuf) < 60 for site in sites)
