"""Property tests: statistics laws (footnotes 10 and 11)."""

from hypothesis import given, strategies as st

from repro.metrics.stats import (
    absolute_average,
    mean,
    mean_abs_deviation,
    percentile,
)

series = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)


@given(series)
def test_mad_nonnegative(values):
    assert mean_abs_deviation(values) >= 0


@given(series)
def test_mad_near_zero_for_constant_series(values):
    constant = [values[0]] * len(values)
    mad = mean_abs_deviation(constant)
    # Up to float summation noise, a constant series has zero deviation.
    assert mad <= 1e-9 * max(1.0, abs(values[0]))


@given(series)
def test_mad_translation_invariant(values):
    shifted = [v + 123.456 for v in values]
    assert mean_abs_deviation(shifted) == abs(
        mean_abs_deviation(values)
    ) or abs(
        mean_abs_deviation(shifted) - mean_abs_deviation(values)
    ) < 1e-6 * max(1.0, abs(mean(values)))


@given(series)
def test_absolute_average_bounds_mean(values):
    assert absolute_average(values) >= abs(mean(values)) - 1e-9


@given(series)
def test_absolute_average_of_nonnegatives_is_mean(values):
    positives = [abs(v) for v in values]
    assert absolute_average(positives) == mean(positives)


@given(series, st.floats(min_value=0, max_value=100))
def test_percentile_within_range(values, q):
    result = percentile(values, q)
    assert min(values) <= result <= max(values)


@given(series)
def test_percentile_monotonic_in_q(values):
    quantiles = [percentile(values, q) for q in (0, 25, 50, 75, 100)]
    assert quantiles == sorted(quantiles)


@given(series, st.floats(min_value=1e-3, max_value=1e3))
def test_mad_scales_linearly(values, factor):
    scaled = [v * factor for v in values]
    expected = mean_abs_deviation(values) * factor
    assert mean_abs_deviation(scaled) == (
        expected
    ) or abs(mean_abs_deviation(scaled) - expected) <= 1e-6 * max(1.0, expected)
