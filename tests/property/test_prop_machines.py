"""Property tests: every registered game honours the Machine contract.

The contract (§3, §5 of the paper) is what makes the whole system sound:

* determinism — same input sequence ⇒ same checksum sequence,
* savestate fidelity — save/load at any point ⇒ identical future,
* checksum sensitivity — the checksum covers the state that inputs affect.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.emulator.machine import available_games, create_game

GAMES = available_games()

input_traces = st.lists(
    st.integers(min_value=0, max_value=0xFFFF), min_size=1, max_size=120
)

machine_settings = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.mark.parametrize("game", GAMES)
@machine_settings
@given(trace=input_traces)
def test_determinism(game, trace):
    a, b = create_game(game), create_game(game)
    for word in trace:
        a.step(word)
        b.step(word)
    assert a.checksum() == b.checksum()


@pytest.mark.parametrize("game", GAMES)
@machine_settings
@given(trace=input_traces, split=st.integers(min_value=0, max_value=119))
def test_savestate_roundtrip_at_any_point(game, trace, split):
    split = min(split, len(trace))
    a = create_game(game)
    for word in trace[:split]:
        a.step(word)
    blob = a.save_state()

    b = create_game(game)
    b.load_state(blob)
    assert b.checksum() == a.checksum()
    assert b.frame == a.frame

    for word in trace[split:]:
        a.step(word)
        b.step(word)
    assert a.checksum() == b.checksum()


@pytest.mark.parametrize("game", GAMES)
@machine_settings
@given(trace=input_traces)
def test_save_state_stable_without_step(game, trace):
    """save_state is a pure observation: calling it twice changes nothing."""
    machine = create_game(game)
    for word in trace:
        machine.step(word)
    first = machine.save_state()
    second = machine.save_state()
    assert first == second
    assert machine.checksum() == machine.checksum()


@pytest.mark.parametrize("game", GAMES)
@machine_settings
@given(trace=input_traces)
def test_frame_counter_tracks_steps(game, trace):
    machine = create_game(game)
    for word in trace:
        machine.step(word)
    assert machine.frame == len(trace)


@pytest.mark.parametrize("game", GAMES)
def test_negative_input_rejected(game):
    from repro.emulator.machine import MachineError

    with pytest.raises(MachineError):
        create_game(game).step(-1)


@pytest.mark.parametrize("game", GAMES)
@machine_settings
@given(
    trace=st.lists(st.integers(min_value=0, max_value=0xFFFF), min_size=5, max_size=60),
    flip_at=st.integers(min_value=0, max_value=4),
)
def test_input_change_eventually_observable(game, trace, flip_at):
    """Two machines fed traces differing in one frame must diverge at that
    frame or keep matching thereafter deterministically (no hidden state)."""
    a, b = create_game(game), create_game(game)
    altered = list(trace)
    altered[flip_at] = altered[flip_at] ^ 0x0001  # press/release P0 UP
    diverged = False
    for word_a, word_b in zip(trace, altered):
        a.step(word_a)
        b.step(word_b)
        if a.checksum() != b.checksum():
            diverged = True
            break
    # Either the flip was observable (usual) or the game provably ignores
    # that bit in that state; both are fine — what is NOT fine is a crash
    # or a nondeterministic outcome, which re-running must confirm.
    a2, b2 = create_game(game), create_game(game)
    diverged2 = False
    for word_a, word_b in zip(trace, altered):
        a2.step(word_a)
        b2.step(word_b)
        if a2.checksum() != b2.checksum():
            diverged2 = True
            break
    assert diverged == diverged2
