"""Fuzzing the datagram ingress path.

A UDP port receives whatever the Internet sends it.  The runtime must
treat arbitrary and mutated datagrams as noise: never crash, never corrupt
protocol state it shouldn't."""

from hypothesis import given, settings, strategies as st

from repro.core.config import SyncConfig
from repro.core.inputs import InputAssignment, PadSource, RandomSource
from repro.core.messages import Ping, StateSnapshot, Sync
from repro.core.vm import SitePeer, SiteRuntime
from repro.emulator.machine import create_game


def make_runtime():
    peers = [SitePeer(s, f"site{s}") for s in range(2)]
    return SiteRuntime(
        config=SyncConfig.paper_defaults(),
        site_no=0,
        assignment=InputAssignment.standard(2),
        machine=create_game("counter"),
        source=PadSource(RandomSource(1), 0),
        peers=peers,
        session_id=1,
    )


@settings(max_examples=200, deadline=None)
@given(st.binary(max_size=200))
def test_random_bytes_never_crash(raw):
    runtime = make_runtime()
    replies = runtime.handle_datagram(raw, 0.0, 0.0)
    assert isinstance(replies, list)


@settings(max_examples=100, deadline=None)
@given(
    st.sampled_from(["sync", "ping", "snapshot"]),
    st.integers(min_value=0, max_value=199),
    st.integers(min_value=0, max_value=255),
)
def test_bitflipped_real_messages_never_crash(kind, position, flip):
    if kind == "sync":
        raw = Sync(1, 1, acks=[5, 5], first_frame=6, inputs=[1, 2, 3]).encode()
    elif kind == "ping":
        raw = Ping(1, 1, seq=0, timestamp_us=1000).encode()
    else:
        raw = StateSnapshot(1, 1, frame=10, state=b"abc", backlog=[[1], []]).encode()
    mutated = bytearray(raw)
    mutated[position % len(mutated)] ^= flip
    runtime = make_runtime()
    runtime.handle_datagram(bytes(mutated), 0.0, 0.0)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),  # sender site (incl. bogus)
            st.lists(st.integers(min_value=-100, max_value=100), min_size=2, max_size=2),
            st.integers(min_value=-50, max_value=200),
            st.lists(st.integers(min_value=0, max_value=0xFFFF), max_size=10),
        ),
        max_size=30,
    )
)
def test_adversarial_sync_messages_never_break_invariants(messages):
    """Whatever SYNC garbage arrives, the lockstep vectors stay ordered and
    the buffer floor stays below the delivery pointer."""
    runtime = make_runtime()
    lockstep = runtime.lockstep
    for sender, acks, first_frame, inputs in messages:
        message = Sync(sender, 1, acks=acks, first_frame=first_frame, inputs=inputs)
        try:
            runtime.handle_datagram(message.encode(), 0.0, 0.0)
        except ValueError:
            # A conflicting input for an occupied slot is corruption the
            # buffer is *designed* to refuse loudly; everything else flows.
            continue
        assert lockstep.ibuf.floor <= max(0, lockstep.ibuf_pointer)
        # Vectors never go backwards below their initial values.
        assert all(v >= -1 for v in lockstep.last_rcv_frame)
