"""Property tests: frame-pacing invariants (Algorithm 3's rate guarantee)."""

from hypothesis import given, settings, strategies as st

from repro.core.config import SyncConfig
from repro.core.pacing import FramePacer

TPF = 1 / 60

compute_times = st.lists(
    st.floats(min_value=0.0, max_value=0.050, allow_nan=False),
    min_size=20,
    max_size=200,
)


@settings(max_examples=50, deadline=None)
@given(compute_times)
def test_long_run_rate_never_exceeds_cfps(computes):
    """Whatever the per-frame compute times, the average frame period is at
    least TimePerFrame — Algorithm 3 only ever *slows down* to the budget,
    it never runs the game fast."""
    pacer = FramePacer(SyncConfig(), 0)
    now = 0.0
    begins = []
    for frame, compute in enumerate(computes):
        pacer.begin_frame(now, frame, None, 0.0)
        begins.append(now)
        now += compute
        now += pacer.end_frame(now)
    span = begins[-1] - begins[0]
    assert span >= (len(begins) - 1) * TPF - 1e-9


@settings(max_examples=50, deadline=None)
@given(compute_times)
def test_rate_recovers_to_cfps_when_work_fits(computes):
    """If every frame's work fits in the budget after a transient, the
    long-run average recovers to exactly CFPS."""
    pacer = FramePacer(SyncConfig(), 0)
    now = 0.0
    begins = []
    # A transient burst of slow frames, then all-fast frames.
    schedule = list(computes[:10]) + [0.001] * 100
    for frame, compute in enumerate(schedule):
        pacer.begin_frame(now, frame, None, 0.0)
        begins.append(now)
        now += compute
        now += pacer.end_frame(now)
    tail = begins[-50:]
    average = (tail[-1] - tail[0]) / (len(tail) - 1)
    assert abs(average - TPF) < 1e-6


@settings(max_examples=50, deadline=None)
@given(compute_times)
def test_wait_never_negative_and_adjust_never_positive(computes):
    pacer = FramePacer(SyncConfig(), 0)
    now = 0.0
    for frame, compute in enumerate(computes):
        pacer.begin_frame(now, frame, None, 0.0)
        now += compute
        wait = pacer.end_frame(now)
        assert wait >= 0.0
        assert pacer.adjust_time_delta <= 1e-12
        now += wait


@settings(max_examples=30, deadline=None)
@given(
    compute_times,
    st.floats(min_value=0.0, max_value=0.3, allow_nan=False),
)
def test_slave_offset_bounded_with_algorithm4(computes, skew):
    """A slave with arbitrary start skew and compute noise stays within a
    few frames of the master schedule once Algorithm 4 engages."""
    config = SyncConfig()
    slave = FramePacer(config, 1)
    master_start = 0.0
    now = master_start + skew
    frame = 0
    for compute in computes + [0.001] * 120:
        master_frame_now = (now - master_start) / TPF
        sample = (int(master_frame_now) + config.buf_frame, now)
        slave.begin_frame(now, frame, sample, 0.0)
        now += min(compute, 0.010)
        now += slave.end_frame(now)
        frame += 1
    final_offset = frame - (now - master_start) / TPF
    assert abs(final_offset) < 3.0
