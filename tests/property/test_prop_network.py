"""Property tests: network substrate invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.net.netem import LinkScheduler, NetemConfig
from repro.net.simnet import SimNetwork
from repro.sim.eventloop import EventLoop

configs = st.builds(
    NetemConfig,
    delay=st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
    jitter=st.floats(min_value=0.0, max_value=0.05, allow_nan=False),
    loss=st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
    duplicate=st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
)


@settings(max_examples=60, deadline=None)
@given(configs, st.integers(min_value=0, max_value=2**31), st.integers(min_value=1, max_value=80))
def test_deliveries_never_precede_sends(config, seed, packets):
    scheduler = LinkScheduler(config, random.Random(seed))
    for index in range(packets):
        now = index * 0.005
        plan = scheduler.plan(now, 64)
        for when in plan.times:
            assert when >= now - 1e-12


@settings(max_examples=60, deadline=None)
@given(
    st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
    st.floats(min_value=0.0, max_value=0.05, allow_nan=False),
    st.integers(min_value=0, max_value=2**31),
)
def test_fifo_without_reorder_discipline(delay, jitter, seed):
    """Jitter alone must never reorder packets (Netem keeps a FIFO)."""
    scheduler = LinkScheduler(
        NetemConfig(delay=delay, jitter=jitter), random.Random(seed)
    )
    deliveries = []
    for index in range(100):
        plan = scheduler.plan(index * 0.001, 64)
        deliveries.extend(plan.times)
    assert deliveries == sorted(deliveries)


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31),
    st.lists(st.binary(min_size=1, max_size=64), min_size=1, max_size=40),
)
def test_lossless_link_delivers_everything_exactly_once(seed, payloads):
    loop = EventLoop()
    network = SimNetwork(loop, seed=seed)
    a = network.socket("a")
    b = network.socket("b")
    network.connect("a", "b", NetemConfig(delay=0.01, jitter=0.005))
    for index, payload in enumerate(payloads):
        loop.call_at(index * 0.002, lambda p=payload: a.send(p, "b"))
    loop.run()
    received = [d.payload for d in b.receive_all()]
    assert sorted(received) == sorted(payloads)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=2**31))
def test_link_rngs_are_independent(seed):
    """Adding traffic on one link must not change another link's fate
    sequence (per-link seeded RNGs)."""

    def run(extra_traffic: bool):
        loop = EventLoop()
        network = SimNetwork(loop, seed=seed)
        a, b, c = network.socket("a"), network.socket("b"), network.socket("c")
        network.connect("a", "b", NetemConfig(delay=0.01, loss=0.5))
        network.connect("a", "c", NetemConfig(delay=0.01, loss=0.5))
        for index in range(50):
            loop.call_at(index * 0.001, lambda i=index: a.send(bytes([i]), "b"))
            if extra_traffic:
                loop.call_at(index * 0.001, lambda i=index: a.send(bytes([i]), "c"))
        loop.run()
        return [d.payload for d in b.receive_all()]

    assert run(False) == run(True)
