"""Property tests: input bit-string algebra (the SET[k] laws from §3)."""

from hypothesis import given, strategies as st

from repro.core.inputs import (
    BITS_PER_PLAYER,
    Buttons,
    InputAssignment,
    RandomSource,
    pack_buttons,
    unpack_buttons,
)

words = st.integers(min_value=0, max_value=(1 << 32) - 1)
pads = st.integers(min_value=0, max_value=0xFF)
players = st.integers(min_value=0, max_value=3)
site_counts = st.integers(min_value=1, max_value=4)


@given(players, pads)
def test_pack_unpack_inverse(player, pad):
    assert unpack_buttons(pack_buttons(player, pad), player) == pad


@given(players, players, pads)
def test_pack_leaves_other_players_empty(player, other, pad):
    if player != other:
        assert unpack_buttons(pack_buttons(player, pad), other) == 0


@given(site_counts, words)
def test_restrict_is_idempotent(num_sites, word):
    assignment = InputAssignment.standard(num_sites)
    for site in range(num_sites):
        once = assignment.restrict(word, site)
        assert assignment.restrict(once, site) == once


@given(site_counts, words)
def test_restrictions_are_disjoint(num_sites, word):
    assignment = InputAssignment.standard(num_sites)
    for a in range(num_sites):
        for b in range(a + 1, num_sites):
            assert assignment.restrict(word, a) & assignment.restrict(word, b) == 0


@given(site_counts, st.lists(words, min_size=1, max_size=4))
def test_merge_within_controlled_mask(num_sites, partials):
    assignment = InputAssignment.standard(num_sites)
    contribution = {site: partials[site % len(partials)] for site in range(num_sites)}
    merged = assignment.merge(contribution)
    assert merged & ~assignment.controlled_mask() == 0


@given(site_counts, words)
def test_merge_of_restrictions_reassembles(num_sites, word):
    """Splitting a word across sites and merging loses only SET[-1] bits."""
    assignment = InputAssignment.standard(num_sites)
    partials = {s: assignment.restrict(word, s) for s in range(num_sites)}
    assert assignment.merge(partials) == word & assignment.controlled_mask()


@given(site_counts, words, st.permutations(list(range(4))))
def test_merge_order_independent(num_sites, word, order):
    assignment = InputAssignment.standard(num_sites)
    sites = [s for s in order if s < num_sites]
    forward = {s: assignment.restrict(word, s) for s in sites}
    backward = {s: assignment.restrict(word, s) for s in reversed(sites)}
    assert assignment.merge(forward) == assignment.merge(backward)


@given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=0, max_value=500))
def test_random_source_pure_function_of_frame(seed, frame):
    a = RandomSource(seed)
    b = RandomSource(seed)
    # Access in different orders; same frame must yield the same value.
    b.get(frame // 2)
    assert a.get(frame) == b.get(frame)


@given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=0, max_value=300))
def test_random_source_stays_in_pad(seed, frame):
    assert RandomSource(seed).get(frame) & ~Buttons.ALL == 0


@given(st.integers(min_value=0, max_value=7), pads, st.integers(min_value=0, max_value=200))
def test_pad_source_bits_in_slice(player, pad, frame):
    from repro.core.inputs import PadSource, ScriptedSource

    source = PadSource(ScriptedSource({frame: pad}), player)
    shift = player * BITS_PER_PLAYER
    assert source.get(frame) == pad << shift
