"""Property tests: the wire format round-trips arbitrary field values and
rejects arbitrary garbage without crashing."""

from hypothesis import given, strategies as st

from repro.core.messages import (
    DecodeError,
    Hello,
    Ping,
    Pong,
    StateSnapshot,
    Sync,
    decode,
)

frames = st.integers(min_value=-(2**31), max_value=2**31 - 1)
u16 = st.integers(min_value=0, max_value=0xFFFF)
u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
input_words = st.lists(u32, max_size=50)


@given(
    u16,
    u32,
    st.lists(frames, min_size=1, max_size=8),
    frames,
    input_words,
)
def test_sync_roundtrip(sender, session, acks, first_frame, inputs):
    message = Sync(sender, session, acks=acks, first_frame=first_frame, inputs=inputs)
    decoded = decode(message.encode())
    assert decoded.sender_site == sender
    assert decoded.session_id == session
    assert decoded.acks == acks
    assert decoded.first_frame == first_frame
    assert decoded.inputs == inputs


@given(u16, u32, u32, u32)
def test_hello_roundtrip(sender, session, game_id, digest):
    decoded = decode(Hello(sender, session, game_id, digest).encode())
    assert (decoded.game_id, decoded.config_digest) == (game_id, digest)


@given(u16, u32, u32, st.integers(min_value=-(2**63), max_value=2**63 - 1))
def test_ping_pong_roundtrip(sender, session, seq, timestamp):
    ping = decode(Ping(sender, session, seq, timestamp).encode())
    assert (ping.seq, ping.timestamp_us) == (seq, timestamp)
    pong = decode(Pong(sender, session, seq, timestamp).encode())
    assert (pong.seq, pong.echo_timestamp_us) == (seq, timestamp)


@given(
    u16,
    u32,
    frames,
    st.binary(max_size=2000),
    st.lists(st.lists(u32, max_size=20), max_size=4),
)
def test_snapshot_roundtrip(sender, session, frame, state, backlog):
    message = StateSnapshot(sender, session, frame, state, backlog)
    decoded = decode(message.encode())
    assert decoded.frame == frame
    assert decoded.state == state
    assert decoded.backlog == backlog


@given(st.binary(max_size=256))
def test_arbitrary_bytes_never_crash(raw):
    """decode() must raise DecodeError or return a message — never crash."""
    try:
        decode(raw)
    except DecodeError:
        pass


@given(
    st.lists(frames, min_size=1, max_size=4),
    frames,
    input_words,
    st.integers(min_value=0, max_value=200),
)
def test_truncated_sync_never_crashes(acks, first_frame, inputs, cut):
    raw = Sync(0, 1, acks, first_frame, inputs).encode()
    truncated = raw[: max(0, len(raw) - cut)]
    try:
        message = decode(truncated)
    except DecodeError:
        return
    # If it decoded, it must be byte-for-byte self-consistent.
    assert message.encode() == truncated


@given(st.binary(min_size=14, max_size=64), st.integers(min_value=0, max_value=13))
def test_bitflip_detected_or_consistent(raw_tail, position):
    raw = bytearray(Sync(0, 1, [5, 5], 6, [1, 2]).encode())
    raw[position % len(raw)] ^= 0xA5
    try:
        decode(bytes(raw))
    except DecodeError:
        pass  # flagged, good
