"""Property tests: delta snapshots reconstruct exactly what full saves do.

The delta protocol's correctness claim (docs/performance.md): if replica
B's divergence from replica A is confined to a page set P, then applying
``A.save_delta(pages=P)`` makes B bit-identical to A — regardless of how
either got where it is (stepping, direct memory pokes, MMIO writes,
restores).  Hypothesis drives arbitrary interleavings of those mutations
and checks ``save_state`` equality, which subsumes checksum equality.
"""

from hypothesis import given, settings, strategies as st

from repro.emulator.cpu import CpuFault
from repro.emulator.machine import MachineError, create_game, verify_delta
from repro.emulator.memory import MEMORY_SIZE

import pytest

#: The console's audio-trigger MMIO register (write-hooked page 0xFF).
AUDIO_TRIGGER = 0xFF13

step_op = st.tuples(st.just("step"), st.integers(0, 0xFFFF))
poke_op = st.tuples(
    st.just("poke"),
    st.tuples(st.integers(0, MEMORY_SIZE - 1), st.integers(0, 0xFF)),
)
word_op = st.tuples(
    st.just("word"),
    st.tuples(st.integers(0, MEMORY_SIZE - 1), st.integers(0, 0xFFFF)),
)
mmio_op = st.tuples(st.just("mmio"), st.integers(0, 0xFF))
operations = st.lists(
    st.one_of(step_op, poke_op, word_op, mmio_op), min_size=1, max_size=40
)


def apply_ops(machine, ops):
    for kind, arg in ops:
        if kind == "step":
            try:
                machine.step(arg)
            except CpuFault:
                pass  # a poke corrupted code/stack; the state is still valid
        elif kind == "poke":
            machine.memory.write_byte(*arg)
        elif kind == "word":
            machine.memory.write_word(*arg)
        else:  # mmio: hits the audio write hook on page 0xFF
            machine.memory.write_byte(AUDIO_TRIGGER, arg)


@settings(max_examples=30, deadline=None)
@given(ops=operations)
def test_delta_reconstructs_console_exactly(ops):
    """A dirty-page delta equals a full save/load, for any mutation mix."""
    ours = create_game("pong")
    twin = create_game("pong")
    twin.load_state(ours.save_state())
    mark = ours.state_mark()
    twin_mark = twin.state_mark()

    apply_ops(ours, ops)
    pages = set(ours.dirty_pages_since(mark)) | set(
        twin.dirty_pages_since(twin_mark)
    )
    twin.apply_delta(ours.save_delta(pages=pages))
    assert twin.save_state() == ours.save_state()
    assert twin.checksum() == ours.checksum()


@settings(max_examples=20, deadline=None)
@given(ops=operations, diverge=operations)
def test_delta_heals_a_diverged_twin(ops, diverge):
    """The union rule: pages *either* side touched are enough to resync."""
    ours = create_game("pong")
    twin = create_game("pong")
    twin.load_state(ours.save_state())
    mark = ours.state_mark()
    twin_mark = twin.state_mark()

    apply_ops(ours, ops)
    apply_ops(twin, diverge)  # speculative execution gone wrong
    pages = set(ours.dirty_pages_since(mark)) | set(
        twin.dirty_pages_since(twin_mark)
    )
    twin.apply_delta(ours.save_delta(pages=pages))
    assert twin.save_state() == ours.save_state()


@settings(max_examples=20, deadline=None)
@given(ops=operations)
def test_full_delta_equals_full_save(ops):
    """``save_delta(pages=None)`` is a complete snapshot in delta framing."""
    ours = create_game("pong")
    apply_ops(ours, ops)
    twin = create_game("pong")
    twin.apply_delta(ours.save_delta())
    assert twin.save_state() == ours.save_state()


@settings(max_examples=20, deadline=None)
@given(
    inputs=st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=50),
    restore_at=st.integers(0, 49),
)
def test_delta_after_restore(inputs, restore_at):
    """``load_state`` marks everything dirty, so a delta after a restore
    still heals the twin (the rollback full-fallback interleaving)."""
    ours = create_game("pong")
    twin = create_game("pong")
    twin.load_state(ours.save_state())
    checkpoint = ours.save_state()
    mark = ours.state_mark()
    twin_mark = twin.state_mark()
    for frame, word in enumerate(inputs):
        ours.step(word)
        if frame == restore_at:
            ours.load_state(checkpoint)
    pages = set(ours.dirty_pages_since(mark)) | set(
        twin.dirty_pages_since(twin_mark)
    )
    twin.apply_delta(ours.save_delta(pages=pages))
    assert twin.save_state() == ours.save_state()


@settings(max_examples=15, deadline=None)
@given(words=st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=60))
def test_fallback_delta_roundtrip_for_python_games(words):
    """Machines without page tracking: delta degrades to a tagged full
    save, and the generic protocol still reconstructs exactly."""
    ours = create_game("brawler")
    for word in words:
        ours.step(word)
    assert ours.dirty_pages_since(ours.state_mark()) is None
    blob = ours.save_delta()
    assert blob[:4] == b"CRCD"
    assert verify_delta(blob)[:4] == b"FULL"
    twin = create_game("brawler")
    twin.apply_delta(blob)
    assert twin.save_state() == ours.save_state()


def test_apply_delta_rejects_garbage():
    console = create_game("pong")
    with pytest.raises(MachineError):
        console.apply_delta(b"NOPE" + b"\x00" * 64)
    with pytest.raises(MachineError):
        console.apply_delta(b"\x01\x02")
    brawler = create_game("brawler")
    with pytest.raises(MachineError):
        brawler.apply_delta(b"RCD1" + b"\x00" * 64)


@settings(max_examples=15, deadline=None)
@given(
    words=st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=30),
    bit=st.integers(0, 7),
    game=st.sampled_from(["pong", "brawler"]),
    data=st.data(),
)
def test_apply_delta_rejects_any_bit_flip(words, bit, game, data):
    """End-to-end integrity: a single flipped bit anywhere in a delta blob
    is rejected with MachineError, never silently loaded."""
    ours = create_game(game)
    for word in words:
        ours.step(word)
    blob = bytearray(ours.save_delta())
    index = data.draw(st.integers(0, len(blob) - 1))
    blob[index] ^= 1 << bit
    twin = create_game(game)
    with pytest.raises(MachineError):
        twin.apply_delta(bytes(blob))
