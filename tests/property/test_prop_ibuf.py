"""Property tests: InputBuffer invariants under arbitrary operation orders."""

from hypothesis import given, strategies as st

from repro.core.ibuf import InputBuffer

frames = st.integers(min_value=0, max_value=200)
values = st.integers(min_value=0, max_value=0xFFFF)
sites = st.integers(min_value=0, max_value=1)


@given(st.lists(st.tuples(frames, sites, values), max_size=100))
def test_first_write_wins(operations):
    """Whatever the order of (possibly duplicate) puts, the first stored
    value for a slot is the one retained — or a conflict is raised."""
    buffer = InputBuffer(2)
    expected = {}
    for frame, site, value in operations:
        key = (frame, site)
        if key in expected:
            if expected[key] != value:
                continue  # conflicting put would raise; skip to keep valid
            buffer.put(frame, site, value)
        else:
            expected[key] = value
            buffer.put(frame, site, value)
    for (frame, site), value in expected.items():
        assert buffer.get(frame, site) == value


@given(
    st.lists(st.tuples(frames, sites, values), max_size=80),
    st.lists(frames, max_size=10),
)
def test_prune_floor_monotonic_and_get_respects_it(operations, prunes):
    buffer = InputBuffer(2)
    floors = [0]
    for frame, site, value in operations:
        if buffer.get(frame, site) is None:
            buffer.put(frame, site, value)
    for cut in prunes:
        buffer.prune_below(cut)
        floors.append(buffer.floor)
    assert floors == sorted(floors)
    for frame in range(buffer.floor):
        assert buffer.get(frame, 0) is None
        assert buffer.get(frame, 1) is None


@given(st.lists(st.tuples(frames, values), min_size=1, max_size=60, unique_by=lambda t: t[0]))
def test_range_for_returns_exactly_stored(pairs):
    buffer = InputBuffer(2)
    stored = dict(pairs)
    low, high = min(stored), max(stored)
    # Fill gaps so the range is contiguous.
    for frame in range(low, high + 1):
        buffer.put(frame, 0, stored.get(frame, 0))
    result = buffer.range_for(0, low, high)
    assert result == [stored.get(f, 0) for f in range(low, high + 1)]


@given(st.lists(st.tuples(frames, sites, values), max_size=60))
def test_complete_iff_all_present(operations):
    buffer = InputBuffer(2)
    present = set()
    for frame, site, value in operations:
        if (frame, site) not in present:
            buffer.put(frame, site, value)
            present.add((frame, site))
    for frame in {f for f, __, __v in operations}:
        expected = ((frame, 0) in present) and ((frame, 1) in present)
        assert buffer.complete(frame, [0, 1]) == expected
