#!/usr/bin/env python
"""Two sites over *real* UDP sockets on localhost, in wall-clock time.

This is the deployment shape of the paper's system: the very same sans-IO
protocol objects that the simulator drives are here bound to OS sockets and
the monotonic clock.  Two threads stand in for the two PCs (run the script
twice with --site 0/--site 1 on two machines for the real thing).

    python examples/real_udp_session.py [--frames 300] [--fps 60]
"""

import argparse
import threading

from repro import (
    ConsistencyChecker,
    PadSource,
    RandomSource,
    SitePeer,
    SiteRuntime,
    SyncConfig,
    InputAssignment,
    create_game,
)
from repro.core.realtime import RealtimeVM
from repro.net.udp import UdpSocket


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=300)
    parser.add_argument("--fps", type=float, default=60.0)
    args = parser.parse_args()

    config = SyncConfig(cfps=args.fps)
    assignment = InputAssignment.standard(2)

    sockets = [UdpSocket(), UdpSocket()]
    peers = [SitePeer(i, sockets[i].address) for i in range(2)]
    print(f"site 0 on {sockets[0].address}, site 1 on {sockets[1].address}")

    vms = []
    for site in range(2):
        runtime = SiteRuntime(
            config=config,
            site_no=site,
            assignment=assignment,
            machine=create_game("shooter"),
            source=PadSource(RandomSource(seed=100 + site, toggle_p=0.2), player=site),
            peers=peers,
            game_id="shooter",
        )
        vms.append(RealtimeVM(runtime, sockets[site], max_frames=args.frames))

    threads = [
        threading.Thread(target=vm.run, name=f"site{i}") for i, vm in enumerate(vms)
    ]
    print(f"running {args.frames} frames at {args.fps} FPS over real UDP ...")
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for socket in sockets:
        socket.close()

    for vm in vms:
        if vm.error is not None:
            raise SystemExit(f"site {vm.runtime.site_no} failed: {vm.error}")

    traces = [vm.runtime.trace for vm in vms]
    verified = ConsistencyChecker().verify_traces(traces)
    print(f"converged: {verified} frames bit-identical across both sites")
    for vm in vms:
        times = vm.runtime.trace.frame_times()
        mean_ms = sum(times) / len(times) * 1000
        print(
            f"  site {vm.runtime.site_no}: mean frame time {mean_ms:.2f} ms "
            f"(target {1000 / args.fps:.2f} ms), "
            f"state 0x{vm.runtime.machine.checksum():08x}"
        )
    print("\nfinal screen (site 0):")
    print(vms[0].runtime.machine.render_text())


if __name__ == "__main__":
    main()
