#!/usr/bin/env python
"""What goes wrong WITHOUT the sync module.

The paper's premise (§3): feeding each replica only its *local* inputs — no
SyncInput — diverges the replicas almost immediately, even with identical
initial state and a perfect network.  We run the same game twice:

1. naive mode: each site applies its local input the moment it is produced
   and the remote input whenever it happens to arrive (no frame alignment);
2. lockstep mode: the paper's Algorithm 2.

and show the first frame where the naive replicas disagree.

    python examples/divergence_demo.py
"""

from repro import (
    ConsistencyChecker,
    NetemConfig,
    PadSource,
    RandomSource,
    SyncConfig,
    build_session,
    create_game,
    two_player_plan,
)


def run_naive(frames: int, one_way: float) -> int:
    """No sync module: remote inputs apply `one_way` of frames late.

    Returns the first divergent frame.
    """
    delay_frames = max(1, round(one_way * 60))
    sources = [
        PadSource(RandomSource(seed=1), player=0),
        PadSource(RandomSource(seed=2), player=1),
    ]
    machines = [create_game("pong-py"), create_game("pong-py")]

    for frame in range(frames):
        for site, machine in enumerate(machines):
            local = sources[site].get(frame)
            # The remote input that has arrived by now is `delay_frames` old.
            remote_frame = frame - delay_frames
            remote = sources[1 - site].get(remote_frame) if remote_frame >= 0 else 0
            machine.step(local | remote)
        if machines[0].checksum() != machines[1].checksum():
            return frame
    return -1


def run_lockstep(frames: int, rtt: float) -> int:
    """The paper's system; returns the number of verified identical frames."""
    plan = two_player_plan(
        SyncConfig.paper_defaults(),
        machine_factory=lambda: create_game("pong-py"),
        sources=[
            PadSource(RandomSource(seed=1), player=0),
            PadSource(RandomSource(seed=2), player=1),
        ],
        game_id="pong-py",
        max_frames=frames,
    )
    session = build_session(plan, NetemConfig.for_rtt(rtt))
    session.run()
    return ConsistencyChecker().verify_traces(
        [vm.runtime.trace for vm in session.vms]
    )


def main() -> None:
    frames, rtt = 600, 0.040
    print(f"{frames} frames of Pong, RTT {rtt * 1000:.0f} ms\n")

    diverged_at = run_naive(frames, one_way=rtt / 2)
    if diverged_at >= 0:
        print(f"naive replication: replicas DIVERGED at frame {diverged_at} "
              f"({diverged_at / 60:.2f} s into the game)")
    else:
        print("naive replication: replicas happened to agree (try more frames)")

    verified = run_lockstep(frames, rtt)
    print(f"lockstep (paper):  replicas identical for all {verified} frames")


if __name__ == "__main__":
    main()
