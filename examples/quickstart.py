#!/usr/bin/env python
"""Quickstart: two sites play the Pong ROM in lockstep over a simulated WAN.

Runs the paper's complete stack — session handshake, local-lag lockstep
(Algorithm 2), frame pacing (Algorithms 3/4) — over a 40 ms RTT link, then
proves the two replicas stayed bit-identical for every frame.

    python examples/quickstart.py
"""

from repro import (
    ConsistencyChecker,
    NetemConfig,
    PadSource,
    RandomSource,
    SyncConfig,
    build_session,
    create_game,
    two_player_plan,
)


def main() -> None:
    frames = 600  # ten seconds of game time at 60 FPS

    plan = two_player_plan(
        SyncConfig.paper_defaults(),  # 60 FPS, 100 ms local lag, 20 ms flush
        machine_factory=lambda: create_game("pong"),
        sources=[
            PadSource(RandomSource(seed=1), player=0),
            PadSource(RandomSource(seed=2), player=1),
        ],
        game_id="pong",
        max_frames=frames,
    )
    session = build_session(plan, NetemConfig.for_rtt(0.040))

    print(f"Running {frames} frames of Pong across two sites (RTT 40 ms)...")
    session.run()

    traces = [vm.runtime.trace for vm in session.vms]
    verified = ConsistencyChecker().verify_traces(traces)
    print(f"Replicas produced identical states for all {verified} frames.")

    for vm in session.vms:
        runtime = vm.runtime
        times = runtime.trace.frame_times()
        mean_ms = sum(times) / len(times) * 1000
        print(
            f"  site {runtime.site_no}: {runtime.frame} frames, "
            f"mean frame time {mean_ms:.2f} ms, "
            f"final state 0x{runtime.machine.checksum():08x}"
        )

    print("\nFinal screen (site 0):")
    print(session.vms[0].runtime.machine.render_text())


if __name__ == "__main__":
    main()
