#!/usr/bin/env python
"""Journal-version extensions: more than two players, observers, late join.

Builds a four-site session for the co-op shooter:

* sites 0 and 1 — players (each controls one ship),
* site 2 — an observer, present from the start, controlling no input bits,
* site 3 — a *late-joining* observer that appears five seconds in, fetches
  a savestate from site 0, and replays forward in lockstep.

All four replicas must converge frame-for-frame.

    python examples/spectators_and_latejoin.py
"""

from repro import (
    ConsistencyChecker,
    NetemConfig,
    PadSource,
    RandomSource,
    SyncConfig,
    build_session,
    create_game,
    players_and_observers_plan,
)
from repro.core.latejoin import LateJoinerVM, register_late_join
from repro.core.multisite import site_address
from repro.core.vm import SitePeer, SiteRuntime
from repro.core.inputs import IdleSource


def main() -> None:
    frames = 900
    config = SyncConfig.paper_defaults()
    plan = players_and_observers_plan(
        config,
        machine_factory=lambda: create_game("shooter"),
        player_sources=[
            PadSource(RandomSource(seed=5, toggle_p=0.2), player=0),
            PadSource(RandomSource(seed=6, toggle_p=0.2), player=1),
        ],
        num_observers=2,  # site 2 joins at start; site 3 joins late
        game_id="shooter",
        max_frames=frames,
        handshake_sites=[0, 1, 2],  # site 3 skips the start handshake
    )
    session = build_session(
        plan, NetemConfig.for_rtt(0.040), excluded_sites=[3]
    )

    joiner_runtime = SiteRuntime(
        config=config,
        site_no=3,
        assignment=plan.assignment,
        machine=create_game("shooter"),
        source=IdleSource(),
        peers=[SitePeer(s, site_address(s)) for s in range(4)],
        game_id="shooter",
    )
    joiner = LateJoinerVM(
        session.loop,
        session.network,
        joiner_runtime,
        max_frames=frames,
        join_time=5.0,
        donor_site=0,
        time_server_address=session.time_server.address,
    )
    # Site 0 donates savestates; everyone learns about the joiner on serve.
    register_late_join(session.vms, session.vms[0], joiner_site=3)
    session.vms.append(joiner)

    print("players: sites 0,1 | observer: site 2 | late joiner: site 3 (t=5s)")
    session.run()

    print(f"late joiner entered at frame {joiner.joined_at_frame}")
    traces = [vm.runtime.trace for vm in session.vms]
    verified = ConsistencyChecker().verify_traces(traces)
    print(f"all four replicas identical over {verified} overlapping frames")

    machine = session.vms[0].runtime.machine
    print(f"shared game: score={machine.score} lives={machine.lives}")
    print(machine.render_text())


if __name__ == "__main__":
    main()
