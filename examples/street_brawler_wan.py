#!/usr/bin/env python
"""Street Brawler across emulated WAN conditions.

The paper's motivating scenario: a fighting game (they used Street Fighter
II) played between two cities.  We sweep a few network profiles — LAN,
domestic broadband, cross-continent, and a lossy mobile link — and report
the metrics a player feels: frame rate, smoothness, cross-site synchrony,
plus the match outcome, which must be identical on both machines.

    python examples/street_brawler_wan.py
"""

import random

from repro import (
    Buttons,
    ConsistencyChecker,
    NetemConfig,
    PadSource,
    SyncConfig,
    build_session,
    create_game,
    two_player_plan,
)
from repro.core.inputs import InputSource
from repro.harness.experiment import collect_metrics


class BrawlSource(InputSource):
    """A deterministic aggressive player: closes distance, mixes attacks."""

    def __init__(self, seed: int, approach: int) -> None:
        self._seed = seed
        self._approach = approach  # Buttons.LEFT or Buttons.RIGHT

    def get(self, frame: int) -> int:
        rng = random.Random((self._seed << 20) ^ frame)
        pad = self._approach
        roll = rng.random()
        if roll < 0.25:
            pad |= Buttons.A  # jab
        elif roll < 0.40:
            pad |= Buttons.B  # kick
        elif roll < 0.50:
            pad = Buttons.DOWN  # stop and block
        return pad

PROFILES = [
    ("LAN", NetemConfig(delay=0.0005)),
    ("broadband 30ms", NetemConfig.for_rtt(0.030)),
    ("cross-country 80ms", NetemConfig.for_rtt(0.080, jitter=0.002)),
    ("transatlantic 120ms", NetemConfig.for_rtt(0.120, jitter=0.003)),
    ("lossy mobile 60ms/2%", NetemConfig.for_rtt(0.060, loss=0.02)),
]


def play_match(name: str, netem: NetemConfig, frames: int = 900) -> None:
    plan = two_player_plan(
        SyncConfig.paper_defaults(),
        machine_factory=lambda: create_game("brawler"),
        sources=[
            PadSource(BrawlSource(seed=41, approach=Buttons.RIGHT), player=0),
            PadSource(BrawlSource(seed=42, approach=Buttons.LEFT), player=1),
        ],
        game_id="brawler",
        max_frames=frames,
    )
    session = build_session(plan, netem)
    session.run()

    ConsistencyChecker().verify_traces([vm.runtime.trace for vm in session.vms])
    result = collect_metrics(session, netem.delay * 2)
    machine = session.vms[0].runtime.machine
    a, b = machine.fighters
    print(
        f"{name:24s} frame_time={result.frame_time_mean[0] * 1000:6.2f}ms "
        f"mad={result.frame_time_mad[0] * 1000:5.2f}ms "
        f"sync={result.synchrony * 1000:5.2f}ms | "
        f"rounds A:{a.rounds_won} B:{b.rounds_won} "
        f"hp A:{a.hp} B:{b.hp}"
    )


def main() -> None:
    print("Street Brawler, 15 s match under different network profiles\n")
    for name, netem in PROFILES:
        play_match(name, netem)
    print("\nEvery profile converged: both machines agree on the match.")


if __name__ == "__main__":
    main()
