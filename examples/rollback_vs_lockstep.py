#!/usr/bin/env python
"""Rollback (timewarp) vs the paper's local-lag lockstep, side by side.

§5 of the paper rejects timewarp: "rolling back states of a distributed
game without semantic knowledge can be expensive."  The Machine contract's
savestates make rollback game-transparent, so this repo implements it —
and this example shows the trade-off the paper was weighing, live:

* lockstep: inputs take 100 ms to appear, but each frame is executed once;
* rollback: inputs appear instantly, but the CPU re-executes mispredicted
  suffixes — watch the replay overhead climb with RTT.

    python examples/rollback_vs_lockstep.py
"""

from repro import (
    ConsistencyChecker,
    NetemConfig,
    PadSource,
    RandomSource,
    SyncConfig,
    build_session,
    create_game,
    two_player_plan,
)
from repro.core.rollback import build_rollback_session
from repro.metrics.stats import mean

RTTS_MS = [40, 120, 240]
FRAMES = 600
GAME = "brawler"


def run_lockstep(rtt: float):
    plan = two_player_plan(
        SyncConfig.paper_defaults(),
        machine_factory=lambda: create_game(GAME),
        sources=[
            PadSource(RandomSource(21, toggle_p=0.1), 0),
            PadSource(RandomSource(22, toggle_p=0.1), 1),
        ],
        game_id=GAME,
        max_frames=FRAMES,
    )
    session = build_session(plan, NetemConfig.for_rtt(rtt))
    session.run(horizon=600.0)
    ConsistencyChecker().verify_traces([vm.runtime.trace for vm in session.vms])
    return mean(session.vms[0].runtime.trace.frame_times())


def run_rollback(rtt: float):
    session = build_rollback_session(
        game_factory=lambda: create_game(GAME),
        sources=[
            PadSource(RandomSource(21, toggle_p=0.1), 0),
            PadSource(RandomSource(22, toggle_p=0.1), 1),
        ],
        netem=NetemConfig.for_rtt(rtt),
        frames=FRAMES,
    )
    session.run(horizon=600.0)
    ConsistencyChecker().verify_traces([vm.runtime.trace for vm in session.vms])
    vm = session.vms[0]
    stats = vm.rollback_stats
    return (
        mean(vm.runtime.trace.frame_times()),
        stats.replayed_frames / max(1, stats.confirmed_frames),
        stats.max_replay_depth,
    )


def main() -> None:
    print(f"{GAME!r}, {FRAMES} frames per run\n")
    print(f"{'RTT':>6}  {'lockstep':>22}  {'rollback':>40}")
    print(f"{'':>6}  {'frame time / input lag':>22}  "
          f"{'frame time / input lag / replay overhead':>40}")
    for rtt_ms in RTTS_MS:
        lockstep_ft = run_lockstep(rtt_ms / 1000)
        rollback_ft, overhead, depth = run_rollback(rtt_ms / 1000)
        print(
            f"{rtt_ms:>4}ms  {lockstep_ft * 1000:>9.2f}ms / 100ms  "
            f"{rollback_ft * 1000:>9.2f}ms /   0ms / "
            f"{overhead * 100:>4.0f}% (depth<={depth})"
        )
    print(
        "\nBoth stayed bit-identical across sites at every RTT; rollback"
        "\nbuys 100 ms of responsiveness and pays for it in re-executed"
        "\nframes — the §5 trade-off, measured."
    )


if __name__ == "__main__":
    main()
