"""Abl-5 — fixed vs adaptive local lag (§4.2's rejected alternative).

The paper fixes local lag at 100 ms, arguing that adapting it to network
conditions "does not pay off".  We implemented adaptive lag (each site
resizes its own input lag from its RTT estimate — no coordination needed)
and measure both sides of the argument:

* steady RTT beyond the fixed-lag threshold: adaptation rescues the frame
  rate, at the price of much higher input latency — the regime the paper
  explicitly recommends against operating in anyway;
* fluctuating RTT: the estimator lags the network, the lag value thrashes,
  and smoothness barely improves — the paper's conclusion, quantified.
"""

from repro.harness.ablations import run_adaptive_lag_ablation
from repro.harness.report import format_adaptive_lag_ablation


def test_adaptive_lag_ablation(benchmark, frames):
    frames = min(frames, 900)
    rows = benchmark.pedantic(
        lambda: run_adaptive_lag_ablation(frames=frames),
        rounds=1,
        iterations=1,
    )
    table = format_adaptive_lag_ablation(rows)
    print("\n" + table)
    benchmark.extra_info["table"] = table

    def pick(scenario, adaptive):
        return next(
            r for r in rows if r.scenario == scenario and r.adaptive == adaptive
        )

    steady_fixed = pick("steady", False)
    steady_adaptive = pick("steady", True)
    fluct_fixed = pick("fluctuating", False)
    fluct_adaptive = pick("fluctuating", True)

    # Steady high RTT: adaptation rescues pacing but costs latency.
    assert steady_adaptive.frame_time_mad < steady_fixed.frame_time_mad / 4
    assert steady_adaptive.mean_lag > steady_fixed.mean_lag * 1.3
    # Fluctuating RTT: adaptation thrashes without a significant
    # smoothness win — the paper's "does not pay off".
    assert fluct_adaptive.lag_changes >= 3
    assert fluct_adaptive.frame_time_mad > fluct_fixed.frame_time_mad * 0.5
