"""Abl-2 — UDP + selective repeat vs a TCP-like transport.

§3.1: "As a reliable transport, TCP solves those problems.  However, it is
problematic in satisfying the real time constraint."  The TCP baseline's
RTO-driven recovery plus in-order delivery stalls the game on every loss;
the paper's scheme re-sends the whole unacked window every 20 ms flush.
"""

from repro.harness.ablations import run_transport_ablation
from repro.harness.report import format_transport_ablation


def test_transport_ablation(benchmark, frames):
    frames = min(frames, 900)
    rows = benchmark.pedantic(
        lambda: run_transport_ablation(
            losses=[0.0, 0.02, 0.05], rtt=0.040, frames=frames
        ),
        rounds=1,
        iterations=1,
    )
    table = format_transport_ablation(rows)
    print("\n" + table)
    benchmark.extra_info["table"] = table

    def pick(transport, loss):
        return next(
            r for r in rows if r.transport == transport and r.loss == loss
        )

    # Both transports preserve logical consistency.
    assert all(r.frames_verified == frames for r in rows)
    # Under loss, the TCP-like transport is visibly less smooth: RTO
    # recovery (≥200 ms) dwarfs the UDP scheme's 20 ms flush retries.
    # (Mean frame time recovers either way — Algorithm 3 compensates
    # stalls — so smoothness, not mean rate, is the discriminator.)
    assert pick("tcp", 0.05).frame_time_mad > pick("udp", 0.05).frame_time_mad * 3
