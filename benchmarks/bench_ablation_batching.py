"""Abl-4 — send-batching interval sweep near the RTT threshold.

§4.2 budgets ~10 ms average (20 ms worst case) of the 100 ms lag budget for
outbound message batching, chosen to "strike a balance between
interactivity and utilization of system resources".  Sweeping the flush
interval at a near-threshold RTT shows exactly that trade: tighter flushing
buys smoothness and latency tolerance, at the price of more datagrams.
"""

from repro.harness.ablations import run_batching_ablation
from repro.harness.report import format_batching_ablation


def test_send_batching_ablation(benchmark, frames):
    frames = min(frames, 900)
    intervals = [0.002, 0.005, 0.010, 0.020, 0.040]
    rows = benchmark.pedantic(
        lambda: run_batching_ablation(
            send_intervals=intervals, rtt=0.170, frames=frames
        ),
        rounds=1,
        iterations=1,
    )
    table = format_batching_ablation(rows)
    print("\n" + table)
    benchmark.extra_info["table"] = table

    by_interval = {r.send_interval: r for r in rows}
    # Tight flushing keeps the near-threshold RTT smooth...
    assert by_interval[0.002].frame_time_mad < by_interval[0.040].frame_time_mad
    # ...but costs strictly more datagrams.
    datagrams = [by_interval[i].datagrams_sent for i in intervals]
    assert all(a >= b for a, b in zip(datagrams, datagrams[1:]))
