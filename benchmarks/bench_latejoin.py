"""Ext-B — late joiner cost (journal-version extension).

Measures what joining a running session costs: snapshot size on the wire,
time from request to first synchronized frame, and the (absence of) impact
on the running players' pacing.
"""

from repro.core.config import SyncConfig
from repro.core.inputs import IdleSource, PadSource, RandomSource
from repro.core.latejoin import LateJoinerVM, register_late_join
from repro.core.multisite import (
    build_session,
    players_and_observers_plan,
    site_address,
)
from repro.core.vm import SitePeer, SiteRuntime
from repro.emulator.machine import create_game
from repro.harness.report import format_table
from repro.metrics.recorder import ConsistencyChecker
from repro.metrics.stats import mean
from repro.net.netem import NetemConfig


def run_latejoin(game, frames, join_time=2.0):
    config = SyncConfig.paper_defaults()
    plan = players_and_observers_plan(
        config,
        machine_factory=lambda: create_game(game),
        player_sources=[
            PadSource(RandomSource(50), player=0),
            PadSource(RandomSource(51), player=1),
        ],
        num_observers=1,
        game_id=game,
        max_frames=frames,
        handshake_sites=[0, 1],
    )
    session = build_session(plan, NetemConfig.for_rtt(0.040), excluded_sites=[2])
    joiner_runtime = SiteRuntime(
        config=config,
        site_no=2,
        assignment=plan.assignment,
        machine=create_game(game),
        source=IdleSource(),
        peers=[SitePeer(s, site_address(s)) for s in range(3)],
        game_id=game,
    )
    joiner = LateJoinerVM(
        session.loop,
        session.network,
        joiner_runtime,
        max_frames=frames,
        join_time=join_time,
        donor_site=0,
    )
    register_late_join(session.vms, session.vms[0], joiner_site=2)
    session.vms.append(joiner)
    session.run(horizon=600.0)

    traces = [vm.runtime.trace for vm in session.vms]
    overlap = ConsistencyChecker().verify_traces(traces)
    snapshot = joiner_runtime.latest_snapshot
    player_times = session.vms[0].runtime.trace.frame_times()
    return {
        "game": game,
        "snapshot_bytes": len(snapshot.state),
        "wire_bytes": len(snapshot.encode()),
        "joined_at_frame": joiner.joined_at_frame,
        "overlap_verified": overlap,
        "player_frame_time": mean(player_times),
    }


def test_latejoin_cost(benchmark, frames):
    frames = min(frames, 900)
    games = ["counter", "pong-py", "shooter", "pong"]

    results = benchmark.pedantic(
        lambda: [run_latejoin(game, frames) for game in games],
        rounds=1,
        iterations=1,
    )
    table = format_table(
        ["game", "savestate(B)", "on-wire(B)", "joined@frame", "verified", "player ft(ms)"],
        [
            [
                r["game"],
                r["snapshot_bytes"],
                r["wire_bytes"],
                r["joined_at_frame"],
                r["overlap_verified"],
                f"{r['player_frame_time'] * 1000:.2f}",
            ]
            for r in results
        ],
    )
    print("\nExt-B: late-join cost per game\n" + table)
    benchmark.extra_info["table"] = table

    for r in results:
        # The joiner converged with the running session...
        assert r["overlap_verified"] > 0
        # ...and the players never noticed (60 FPS held).
        assert r["player_frame_time"] < 1 / 60 * 1.05
    # The console savestate is the full 64 KiB machine; the pure-Python
    # games are tiny — both must transfer.
    sizes = {r["game"]: r["snapshot_bytes"] for r in results}
    assert sizes["pong"] > 60_000
    assert sizes["counter"] < 100
