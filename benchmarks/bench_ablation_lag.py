"""Abl-3 — local lag (BufFrame) sweep.

§4.2 explains why local lag is *fixed* at 100 ms: below the threshold it
already satisfies interactivity; shrinking it just makes the user feel the
network.  The sweep shows the trade directly: at a fixed RTT, small
BufFrame values stall the frame loop, large ones hide the latency entirely
(at the cost of input-to-screen delay, which IS the lag value).
"""

from repro.harness.ablations import run_lag_ablation
from repro.harness.report import format_lag_ablation


def test_local_lag_ablation(benchmark, frames):
    frames = min(frames, 900)
    rows = benchmark.pedantic(
        lambda: run_lag_ablation(
            buf_frames=[0, 2, 4, 6, 9, 12], rtt=0.100, frames=frames
        ),
        rounds=1,
        iterations=1,
    )
    table = format_lag_ablation(rows)
    print("\n" + table)
    benchmark.extra_info["table"] = table

    by_lag = {r.buf_frame: r for r in rows}
    # No lag at RTT 100 ms: every frame waits ~a one-way trip.
    assert by_lag[0].frame_time_mean > 1 / 60 * 1.5
    # The paper's 6 frames fully hide RTT 100 ms.
    assert by_lag[6].frame_time_mean < 1 / 60 * 1.05
    # More lag than needed buys nothing further.
    assert by_lag[12].frame_time_mean < 1 / 60 * 1.05
    # Frame time decreases monotonically (within noise) as lag grows.
    times = [r.frame_time_mean for r in rows]
    assert all(a >= b - 0.001 for a, b in zip(times, times[1:]))
