"""Ext-D — timewarp/rollback vs local-lag lockstep (§5's rejected design).

§5 rejects timewarp because "rolling back states of a distributed game
without semantic knowledge can be expensive".  With the Machine contract's
generic savestates we can implement rollback game-transparently and put a
number on "expensive": the replay overhead (extra frame executions per
confirmed frame) and the rollback rate, against the latency it buys back
(zero input lag instead of the paper's 100 ms).
"""

from repro.core.inputs import PadSource, RandomSource
from repro.core.rollback import build_rollback_session
from repro.emulator.machine import create_game
from repro.harness.experiment import run_point
from repro.harness.report import format_table
from repro.metrics.recorder import ConsistencyChecker
from repro.metrics.stats import mean
from repro.net.netem import NetemConfig


def run_rollback_point(rtt, frames, toggle_p, seed=7):
    session = build_rollback_session(
        game_factory=lambda: create_game("counter"),
        sources=[
            PadSource(RandomSource(seed * 2 + 1, toggle_p=toggle_p), 0),
            PadSource(RandomSource(seed * 2 + 2, toggle_p=toggle_p), 1),
        ],
        netem=NetemConfig.for_rtt(rtt),
        frames=frames,
        seed=seed,
    )
    session.run(horizon=600.0)
    verified = ConsistencyChecker().verify_traces(
        [vm.runtime.trace for vm in session.vms]
    )
    vm = session.vms[0]
    stats = vm.rollback_stats
    return {
        "rtt": rtt,
        "toggle_p": toggle_p,
        "frame_time": mean(vm.runtime.trace.frame_times()),
        "verified": verified,
        "rollback_rate": stats.rollbacks / max(1, stats.confirmed_frames),
        "replay_overhead": stats.replayed_frames / max(1, stats.confirmed_frames),
        "max_depth": stats.max_replay_depth,
    }


def test_rollback_vs_lockstep(benchmark, frames):
    frames = min(frames, 900)
    rtts = [0.040, 0.080, 0.160, 0.240]

    def run_all():
        rollback = [run_rollback_point(rtt, frames, toggle_p=0.08) for rtt in rtts]
        calm = [run_rollback_point(rtt, frames, toggle_p=0.02) for rtt in rtts]
        lockstep = [run_point(rtt, frames=frames) for rtt in rtts]
        return rollback, calm, lockstep

    rollback, calm, lockstep = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for rb, cm, ls in zip(rollback, calm, lockstep):
        rows.append(
            [
                f"{rb['rtt'] * 1000:.0f}",
                f"{ls.frame_time_mean[0] * 1000:.2f}",
                "100",
                f"{rb['frame_time'] * 1000:.2f}",
                "0",
                f"{rb['rollback_rate'] * 100:.0f}%",
                f"{rb['replay_overhead'] * 100:.0f}%",
                rb["max_depth"],
                f"{cm['replay_overhead'] * 100:.0f}%",
            ]
        )
    table = "Ext-D: rollback (zero lag) vs lockstep (100 ms lag)\n" + format_table(
        [
            "RTT(ms)",
            "lockstep ft(ms)",
            "lockstep lag(ms)",
            "rollback ft(ms)",
            "rollback lag(ms)",
            "rollback rate",
            "replay overhead",
            "max depth",
            "overhead (calm pads)",
        ],
        rows,
    )
    print("\n" + table)
    benchmark.extra_info["table"] = table

    # Consistency: the rollback shadow is exactly lockstep.
    assert all(r["verified"] == frames for r in rollback)
    # Rollback holds 60 FPS with zero lag at RTTs where lockstep also does.
    assert rollback[0]["frame_time"] < 1 / 60 * 1.05
    # The paper's cost claim: replay overhead grows with RTT (deeper
    # speculation) and with input activity.
    assert rollback[-1]["replay_overhead"] > rollback[0]["replay_overhead"]
    for rb, cm in zip(rollback, calm):
        assert cm["replay_overhead"] <= rb["replay_overhead"]
    # Depth is bounded by the speculation the RTT forces.
    assert rollback[-1]["max_depth"] >= rollback[0]["max_depth"]
