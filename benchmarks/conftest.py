"""Shared configuration for the benchmark harness.

Each benchmark regenerates one of the paper's evaluation artifacts and
prints the underlying table (run with ``-s`` to see it, or check
``benchmark.extra_info``).  Two environment knobs control fidelity:

* ``REPRO_BENCH_FRAMES`` — frames per experiment (default 600; the paper
  records 3600).
* ``REPRO_BENCH_FULL=1`` — run the paper's complete RTT sweep
  (25 points) instead of the reduced 9-point sweep.

Everything collected from this directory is auto-marked ``bench``, and
the repository-wide ``addopts`` excludes that marker — so benchmark runs
must opt back in with ``-m bench``.  A full-fidelity Figure 1 + Figure 2
run:

    REPRO_BENCH_FULL=1 REPRO_BENCH_FRAMES=3600 \
        pytest benchmarks/bench_figure1.py benchmarks/bench_figure2.py \
        --benchmark-only -m bench -s

For the plain throughput/regression numbers (no pytest involved) use
``python benchmarks/run_bench.py``; see docs/performance.md.
"""

import os

import pytest

from repro.harness.experiment import PAPER_RTT_SWEEP


def pytest_collection_modifyitems(items):
    """Every test in benchmarks/ carries the ``bench`` marker."""
    for item in items:
        item.add_marker(pytest.mark.bench)


def bench_frames() -> int:
    return int(os.environ.get("REPRO_BENCH_FRAMES", "600"))


def bench_rtts() -> list:
    if os.environ.get("REPRO_BENCH_FULL") == "1":
        return list(PAPER_RTT_SWEEP)
    return [0.0, 0.040, 0.080, 0.100, 0.120, 0.140, 0.160, 0.200, 0.300]


@pytest.fixture
def frames() -> int:
    return bench_frames()


@pytest.fixture
def rtts() -> list:
    return bench_rtts()
