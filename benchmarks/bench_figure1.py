"""Figure 1 — frame rates and smoothness vs RTT (Experiment Series 1).

Paper shape to reproduce: ~16.7 ms average frame time (60 FPS) on a flat
plateau at low RTT; the mean-absolute-deviation of frame times stays near
zero, ramps as RTT approaches the threshold, then jumps; past the threshold
the frame time itself grows (FPS degrades).
"""

from repro.harness.report import format_series1
from repro.harness.series1 import find_threshold, run_series1


def test_figure1_frame_rates_and_smoothness(benchmark, frames, rtts):
    rows = benchmark.pedantic(
        lambda: run_series1(rtts=rtts, frames=frames), rounds=1, iterations=1
    )
    table = format_series1(rows)
    print("\n" + table)

    benchmark.extra_info["table"] = table
    benchmark.extra_info["threshold_rtt_ms"] = (
        (find_threshold(rows) or 0) * 1000
    )

    # The paper's qualitative claims, asserted on our reproduction:
    # 1. 60 FPS plateau below 100 ms RTT.
    low = [r for r in rows if r.rtt <= 0.100]
    assert all(abs(r.frame_time_mean - 1 / 60) < 0.001 for r in low)
    # 2. near-zero deviation below 100 ms.
    assert all(r.frame_time_mad < 0.005 for r in low)
    # 3. a threshold exists: some swept RTT shows a deviation jump.
    assert find_threshold(rows) is not None
    # 4. past the far end the game runs visibly slower than CFPS.
    assert rows[-1].frame_time_mean > 1 / 60 * 1.15
    # 5. every point stayed logically consistent.
    assert all(r.frames_verified == frames for r in rows)
