"""§4.2 — the latency-budget analysis behind the RTT threshold.

The paper derives its 140 ms threshold as
``2 × (local_lag − sync_deviation − send_batching − thread_slice)``.
This benchmark measures the threshold with each overhead toggled off,
showing that the budget terms are real: removing an overhead buys back the
corresponding latency tolerance.
"""

from repro.core.config import SyncConfig
from repro.harness.experiment import run_point
from repro.harness.report import format_table

PROBE_RTTS = [r / 1000 for r in range(120, 261, 10)]
MAD_JUMP = 0.008


def measure_threshold(frames, config=None, timer_granularity=0.010):
    """First probed RTT whose smoothness deviation exceeds the jump level."""
    for rtt in PROBE_RTTS:
        result = run_point(
            rtt,
            frames=frames,
            config=config,
            timer_granularity=timer_granularity,
        )
        if result.frame_time_mad[0] > MAD_JUMP:
            return rtt
    return float("inf")


def test_threshold_budget_terms(benchmark, frames):
    frames = min(frames, 900)  # 7 probes × 4 variants; keep it bounded

    def run_all():
        return {
            "paper profile (batch 20ms + slice 5ms + timer 10ms)": measure_threshold(
                frames
            ),
            "no timer granularity": measure_threshold(
                frames, timer_granularity=0.0
            ),
            "no thread slice": measure_threshold(
                frames, config=SyncConfig(slice_delay=0.0)
            ),
            "tight batching (2ms flush)": measure_threshold(
                frames, config=SyncConfig(send_interval=0.002)
            ),
            "longer lag (BufFrame 8 ≈ 133ms)": measure_threshold(
                frames, config=SyncConfig(buf_frame=8)
            ),
        }

    thresholds = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        ["configuration", "threshold RTT (ms)"],
        [
            [name, "%.0f" % (value * 1000) if value != float("inf") else ">260"]
            for name, value in thresholds.items()
        ],
    )
    print("\n§4.2 threshold budget\n" + table)
    benchmark.extra_info["table"] = table

    baseline = thresholds["paper profile (batch 20ms + slice 5ms + timer 10ms)"]
    # Each removed overhead must tolerate at least as much latency.
    assert thresholds["no thread slice"] >= baseline
    assert thresholds["tight batching (2ms flush)"] >= baseline
    # Tight batching buys the largest chunk of the budget (≈ 2×10 ms).
    assert thresholds["tight batching (2ms flush)"] > baseline
    # And two more frames of local lag buy ≈ 2 × 33 ms of RTT tolerance.
    assert thresholds["longer lag (BufFrame 8 ≈ 133ms)"] >= baseline + 0.030
