"""Ext-E — bandwidth accounting.

§4.2 mentions the "balance between interactivity and utilization of system
resources (such as CPU and bandwidths)"; [12] in the related work compares
multiplayer architectures by bandwidth.  This benchmark measures the sync
traffic per site as a function of player count (the mesh broadcast is
O(N) per site) and flush interval (fewer, larger messages amortize
headers), and gates the wire-format v2 send path against both the frozen
v1 number (the ≥3x reduction the refactor claimed) and the v2 baseline
(no silent regression creep).
"""

from repro.core.config import SyncConfig
from repro.core.inputs import InputAssignment, PadSource, RandomSource
from repro.core.multisite import SessionPlan, build_session
from repro.emulator.machine import create_game
from repro.harness.report import format_table
from repro.metrics.bench import (
    BANDWIDTH_V1_BPS,
    check_bandwidth,
    measure_bandwidth_profile,
)
from repro.metrics.recorder import ConsistencyChecker
from repro.net.netem import NetemConfig


def measure_bandwidth(num_players, send_interval, frames, seed=7):
    config = SyncConfig(send_interval=send_interval)
    plan = SessionPlan(
        config=config,
        assignment=InputAssignment.standard(num_players),
        machines=[create_game("counter") for __ in range(num_players)],
        sources=[
            PadSource(RandomSource(seed + i), player=i)
            for i in range(num_players)
        ],
        max_frames=frames,
        seed=seed,
    )
    session = build_session(plan, NetemConfig.for_rtt(0.040))
    session.run(horizon=600.0)
    ConsistencyChecker().verify_traces([vm.runtime.trace for vm in session.vms])
    duration = frames / config.cfps
    vm = session.vms[0]
    stats = vm.socket.stats
    return {
        "players": num_players,
        "flush_ms": send_interval * 1000,
        "sent_Bps": stats.bytes_sent / duration,
        "received_Bps": stats.bytes_received / duration,
        "datagrams_per_s": stats.datagrams_sent / duration,
    }


def test_bandwidth_accounting(benchmark, frames):
    frames = min(frames, 900)
    cases = [
        (2, 0.020),
        (3, 0.020),
        (4, 0.020),
        (2, 0.005),
        (2, 0.050),
    ]
    results = benchmark.pedantic(
        lambda: [measure_bandwidth(p, i, frames) for p, i in cases],
        rounds=1,
        iterations=1,
    )
    table = "Ext-E: sync bandwidth per site (RTT 40 ms)\n" + format_table(
        ["players", "flush(ms)", "sent (B/s)", "recv (B/s)", "datagrams/s"],
        [
            [
                r["players"],
                f"{r['flush_ms']:.0f}",
                f"{r['sent_Bps']:.0f}",
                f"{r['received_Bps']:.0f}",
                f"{r['datagrams_per_s']:.1f}",
            ]
            for r in results
        ],
    )
    print("\n" + table)
    benchmark.extra_info["table"] = table

    by_case = {(r["players"], r["flush_ms"]): r for r in results}
    # Mesh broadcast: per-site send bandwidth grows with player count.
    assert by_case[(3, 20)]["sent_Bps"] > by_case[(2, 20)]["sent_Bps"]
    assert by_case[(4, 20)]["sent_Bps"] > by_case[(3, 20)]["sent_Bps"]
    # Faster flushing costs more bytes (headers + retransmission overlap).
    assert by_case[(2, 5)]["sent_Bps"] > by_case[(2, 20)]["sent_Bps"]
    # The paper's observation holds: "the amount of data is not excessive" —
    # a two-player session fits in a few kilobytes per second.
    assert by_case[(2, 20)]["sent_Bps"] < 10_000


def test_v2_send_path_regression_gate(benchmark, frames):
    """The wire-format v2 acceptance bar, re-measured every bench run.

    On the standard lossy two-site profile (the configuration
    ``BANDWIDTH_V1_BPS`` was frozen under) the v2 send path must stay at
    least 3x under the legacy codec and within tolerance of its own
    checked-in baseline.  Byte counts are deterministic in the simulator,
    so this is a hard gate, not a noise-banded one.
    """
    frames = min(frames, 900)
    result = benchmark.pedantic(
        lambda: measure_bandwidth_profile(frames=frames),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["sent_Bps"] = result["sent_Bps"]
    benchmark.extra_info["v1_Bps"] = BANDWIDTH_V1_BPS
    if frames < 600:
        return  # shrunken smoke run: startup transient dominates
    assert result["sent_Bps"] <= BANDWIDTH_V1_BPS / 3, (
        f"v2 send path {result['sent_Bps']:.0f} B/s/site lost the 3x "
        f"reduction over v1's {BANDWIDTH_V1_BPS:.0f}"
    )
    assert check_bandwidth(result["sent_Bps"]) == []
