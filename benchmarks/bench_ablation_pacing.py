"""Abl-1 — Algorithm 4 (master/slave pacing) under start-up skew.

§3.2: without Algorithm 4 "the site that starts earlier is always
penalized ... The earlier site will suffer from considerable speed
fluctuation."  With it, the slave absorbs the skew within a few frames and
"no site will be penalized".
"""

from repro.harness.ablations import run_pacing_ablation
from repro.harness.report import format_pacing_ablation


def test_algorithm4_ablation(benchmark, frames):
    frames = min(frames, 900)
    rows = benchmark.pedantic(
        lambda: run_pacing_ablation(
            start_skews=[0.0, 0.1, 0.2], rtt=0.040, frames=frames
        ),
        rounds=1,
        iterations=1,
    )
    table = format_pacing_ablation(rows)
    print("\n" + table)
    benchmark.extra_info["table"] = table

    for skew in (0.1, 0.2):
        with_alg4 = next(
            r for r in rows if r.start_skew == skew and r.master_slave_pacing
        )
        without = next(
            r for r in rows if r.start_skew == skew and not r.master_slave_pacing
        )
        # Algorithm 4 keeps the two sites closer together under skew...
        assert with_alg4.synchrony < without.synchrony
        # ...and the earlier site's stalls shrink (it is no longer the one
        # perpetually waiting for the late starter).
        assert with_alg4.master_overrun_stalls <= without.master_overrun_stalls
