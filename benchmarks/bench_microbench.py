"""Microbenchmarks: throughput of the substrate components.

These are conventional pytest-benchmark timings (many rounds) for the
pieces whose speed bounds experiment turnaround: the RC-16 console, the
pure-Python games, the lockstep state machine and the wire codec.
"""

from repro.core.config import SyncConfig
from repro.core.inputs import InputAssignment
from repro.core.lockstep import LockstepSync
from repro.core.messages import Ping, Sync, decode, decode_all, pack_batch
from repro.core.wire_v1 import encode_v1
from repro.emulator.machine import create_game
from repro.metrics.bench import time_call


def test_console_frame_throughput(benchmark):
    """RC-16 Pong: emulated frames per second of host time."""
    console = create_game("pong")

    def run_frames():
        for frame in range(60):
            console.step(frame & 0x0303)

    benchmark(run_frames)


def test_brawler_frame_throughput(benchmark):
    game = create_game("brawler")

    def run_frames():
        for frame in range(600):
            game.step((frame * 2654435761) & 0xFFFF)

    benchmark(run_frames)


def test_shooter_frame_throughput(benchmark):
    game = create_game("shooter")

    def run_frames():
        for frame in range(600):
            game.step((frame * 2654435761) & 0xFFFF)

    benchmark(run_frames)


def test_lockstep_roundtrip_throughput(benchmark):
    """Buffer + build + receive + deliver cycles per second."""
    config = SyncConfig()
    assignment = InputAssignment.standard(2)

    def run_protocol():
        a = LockstepSync(config, 0, assignment, 1)
        b = LockstepSync(config, 1, assignment, 1)
        for frame in range(300):
            a.buffer_local_input(frame, frame & 0xFF)
            b.buffer_local_input(frame, (frame << 8) & 0xFF00)
            for sender, receiver in ((a, b), (b, a)):
                message = sender.build_sync_for(receiver.site_no, force=True)
                if message is not None:
                    receiver.on_sync(message, frame / 60)
            a.deliver()
            b.deliver()

    benchmark(run_protocol)


def test_sync_codec_decode_throughput(benchmark):
    message = Sync(0, 1, acks=[100, 90], first_frame=90, inputs=list(range(12)))
    raw = message.encode()

    def codec():
        for __ in range(100):
            decode(raw)

    benchmark(codec)


def test_sync_codec_encode_throughput(benchmark):
    """v2 encode from scratch (mask derivation + varint packing)."""

    def codec():
        for __ in range(100):
            Sync(
                0, 1, acks=[100, 90], first_frame=90, inputs=list(range(12))
            ).encode()

    benchmark(codec)


def test_batch_assembly_throughput(benchmark):
    """One flush tick's coalescing: SYNC + PONG into a BATCH, then decode."""
    sync = Sync(0, 1, acks=[100, 90], first_frame=90, inputs=list(range(8)))
    ping = Ping(0, 1, seq=7, timestamp_us=123_456)
    members = [
        (Sync.TYPE_ID, sync._encode_body()),
        (Ping.TYPE_ID, ping._encode_body()),
    ]

    def assemble():
        for __ in range(100):
            decode_all(pack_batch(0, 1, members))

    benchmark(assemble)


def test_v2_sync_is_compact(benchmark):
    """The codec's size claim, pinned where the timings live: a two-site
    8-frame SYNC must encode to under half its v1 size."""
    message = Sync(
        0, 1, acks=[100, 95], first_frame=96, inputs=[1, 0, 3, 2, 1, 0, 1, 3]
    )

    benchmark(lambda: message.encode())
    v1_size = len(encode_v1(message))
    v2_size = len(message.encode())
    assert v2_size < v1_size / 2, (
        f"v2 SYNC is {v2_size} B vs v1's {v1_size} B — lost the 2x claim"
    )


def test_console_checksum_throughput(benchmark):
    """Cold checksum (every chunk dirty) on pong: the ISSUE-6 budget is
    50 µs — an order of magnitude under the pre-chunking ~200 µs — so a
    digest regression fails loudly rather than silently eroding the
    "frame time is negligible next to network latency" argument."""
    console = create_game("pong")
    for frame in range(10):
        console.step(frame)
    blob = console.save_state()

    def cold_checksum():
        console.load_state(blob)  # marks every page dirty
        console.checksum()

    benchmark(cold_checksum)
    # Time the digest alone (load_state outside the region) for the gate.
    console.load_state(blob)
    cold_us = (
        time_call(
            lambda: (console.load_state(blob), console.checksum()), repeats=5
        )
        - time_call(lambda: console.load_state(blob), repeats=5)
    ) * 1e6
    assert cold_us < 50.0, f"cold checksum took {cold_us:.1f} us (budget 50)"


def test_timeline_collector_throughput(benchmark):
    """Frame-latency attribution hot path: one capture note, stamp,
    coverage mark, gate-open and present per frame.  This is everything
    the engine adds per frame when FEATURE_TIMELINE is on (histogram/SLO
    analysis is deferred to scrape time), so it must be microseconds —
    the run_bench.py gate holds hooks + stamp codec under 2% of total
    per-frame session cost."""
    from repro.obs.timeline import TimelineCollector

    tpf = 1 / 60

    def attribute_frames():
        collector = TimelineCollector(tpf)
        for frame in range(300):
            now = frame * tpf
            collector.on_local_capture(frame + 6, now)
            collector.on_stamp(1, frame, now - 0.030, now - 0.035)
            collector.on_remote_frames(1, frame, frame, now + 0.001, now + 0.0015)
            collector.on_gate_open(frame, now + 0.002)
            collector.on_present(frame, now + 0.003)
        collector.fresh.clear()

    benchmark(attribute_frames)


def test_console_savestate_throughput(benchmark):
    console = create_game("pong")
    for frame in range(10):
        console.step(frame)

    def save_load():
        blob = console.save_state()
        console.load_state(blob)

    benchmark(save_load)
