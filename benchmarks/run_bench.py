#!/usr/bin/env python
"""The regression benchmark: one command, one dated JSON result.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/run_bench.py            # full run
    PYTHONPATH=src python benchmarks/run_bench.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/run_bench.py --out results/

Writes ``BENCH_<date>.json`` (schema in :mod:`repro.metrics.bench`) and
prints a human summary with the seed baseline alongside, so a perf
regression shows up as a ratio in plain sight.  ``--quick`` shrinks every
measurement to a smoke test: it validates the harness end-to-end (and is
exercised by the tier-1 suite) but its numbers are not comparable.
"""

from __future__ import annotations

import argparse
import sys

from repro.emulator.machine import available_games, create_game
from repro.metrics.bench import (
    BANDWIDTH_BASELINE_BPS,
    ROM_FPS_BASELINE,
    SEED_BASELINE,
    check_bandwidth,
    check_block_fps,
    check_predictor_reduction,
    check_sweep,
    check_timeline_overhead,
    measure_bandwidth_profile,
    measure_block_stats,
    measure_game_fps,
    measure_lockstep_roundtrips,
    measure_predictor_comparison,
    measure_rollback_session,
    measure_snapshot_costs,
    measure_sweep,
    measure_timeline_overhead,
    verify_block_parity,
    write_bench_json,
)

#: Console games measured under all three interpreters.
CONSOLE_GAMES = ("pong", "tankduel", "smc")


def run(quick: bool) -> dict:
    frames = 60 if quick else 600
    repeats = 1 if quick else 3

    # Semantics before speed: a drifting block compiler would make every
    # number below meaningless (and --quick is the CI smoke for this).
    verify_block_parity("pong", frames=60)

    game_fps = {}
    reference_fps = {}
    fast_fps = {}
    block_fps = {}
    block_stats = {}
    for name in available_games():
        game_fps[name] = round(
            measure_game_fps(name, frames=frames, repeats=repeats), 1
        )
        if name in CONSOLE_GAMES:
            # The default interpreter IS the block translator, so the
            # game_fps sample above already measured block mode.
            block_fps[name] = game_fps[name]
            fast_fps[name] = round(
                measure_game_fps(
                    name, frames=frames, repeats=repeats, interpreter="fast"
                ),
                1,
            )
            reference_fps[name] = round(
                measure_game_fps(
                    name, frames=frames, repeats=repeats, interpreter="reference"
                ),
                1,
            )
            block_stats[name] = measure_block_stats(name, frames=frames)

    snapshot = {
        name: {
            key: round(value, 2)
            for key, value in measure_snapshot_costs(
                create_game(name), repeats=repeats
            ).items()
        }
        for name in ("pong", "brawler")
    }

    lockstep = round(
        measure_lockstep_roundtrips(cycles=30 if quick else 300, repeats=repeats), 1
    )

    rollback = measure_rollback_session(frames=60 if quick else 240)
    rollback["wall_seconds"] = round(rollback["wall_seconds"], 3)

    predictor = measure_predictor_comparison(frames=120 if quick else 480)

    # Deterministic in the simulator: the quick two-point smoke and the
    # full (profiles x RTT) grid are both comparable across commits.
    sweep = measure_sweep(quick=quick)

    bandwidth = {
        key: round(value, 1)
        for key, value in measure_bandwidth_profile(
            frames=120 if quick else 900
        ).items()
    }

    timeline_overhead = {
        name: {
            key: round(value, 3)
            for key, value in measure_timeline_overhead(
                game=name,
                frames=60 if quick else 360,
                repeats=1 if quick else 2,
            ).items()
        }
        for name in ("pong", "tankduel")
    }

    return {
        "quick": quick,
        "game_fps": game_fps,
        "reference_fps": reference_fps,
        "fast_fps": fast_fps,
        "block_fps": block_fps,
        "block_stats": block_stats,
        "lockstep_roundtrips_per_s": lockstep,
        "snapshot": snapshot,
        "rollback_session": rollback,
        "predictor_comparison": predictor,
        "adaptive_sweep": sweep,
        "bandwidth": bandwidth,
        "timeline_overhead": timeline_overhead,
    }


def summarize(results: dict) -> str:
    lines = ["== RC-16 benchmark =="]
    if results["quick"]:
        lines.append("(--quick: smoke-test sizes, numbers not comparable)")
    baseline = SEED_BASELINE["game_fps"]
    lines.append("-- emulated frames/sec (default interpreter) --")
    for name, fps in sorted(results["game_fps"].items()):
        extra = ""
        if name in baseline:
            extra = f"  seed={baseline[name]:.0f}  ({fps / baseline[name]:.2f}x)"
        lines.append(f"  {name:12s} {fps:12.0f}{extra}")
    if results["block_fps"]:
        lines.append("-- console interpreters, frames/sec side by side --")
        for name in sorted(results["block_fps"]):
            block = results["block_fps"][name]
            fast = results["fast_fps"][name]
            reference = results["reference_fps"][name]
            gate = ""
            if name in ROM_FPS_BASELINE:
                gate = f"  (block baseline {ROM_FPS_BASELINE[name]:.0f})"
            lines.append(
                f"  {name:12s} block={block:.0f}  fast={fast:.0f}  "
                f"reference={reference:.0f}{gate}"
            )
            stats = results["block_stats"][name]
            lines.append(
                f"  {'':12s} blocks={stats['blocks_compiled']}  "
                f"hits={stats['block_hits']}  "
                f"invalidations={stats['block_invalidations']}  "
                f"fallback={stats['fallback_steps']}"
            )
    lines.append(
        f"-- lockstep round-trips/sec: {results['lockstep_roundtrips_per_s']:.0f}"
    )
    lines.append("-- snapshot/checksum costs (us) --")
    for name, costs in sorted(results["snapshot"].items()):
        pairs = "  ".join(f"{k}={v:g}" for k, v in sorted(costs.items()))
        lines.append(f"  {name:12s} {pairs}")
    rb = results["rollback_session"]
    lines.append(
        "-- rollback session: "
        f"{rb['rollbacks']} rollbacks, {rb['replayed_frames']} replayed frames, "
        f"{rb['snapshot_bytes_copied']} delta bytes copied "
        f"(full savestates would be {rb['snapshot_bytes_full']})"
    )
    pred = results["predictor_comparison"]
    reduction = pred["misprediction_reduction"]
    per = "  ".join(
        f"{name}={pred[name]['mispredicted_frames']}"
        for name in ("naive", "repeat-last", "heuristic")
    )
    lines.append(
        "-- input predictors (mispredicted frames, tap-structured trace): "
        f"{per}  reduction={reduction:.0%}"
    )
    sweep = results["adaptive_sweep"]
    worst = max(
        (p["adaptive_frame_ms"] for p in sweep["points"]), default=0.0
    )
    lines.append(
        f"-- adaptive WAN sweep: {len(sweep['points'])} points, "
        f"{sweep['failures']} failing, "
        f"worst adaptive frame {worst:.2f}ms"
    )
    for point in sweep["points"]:
        if not point["passed"]:
            lines.append(
                f"  FAIL {point['profile']} @ {point['rtt_ms']}ms: "
                + "; ".join(point["problems"])
            )
    bw = results["bandwidth"]
    lines.append(
        "-- sync bandwidth (lossy two-site profile): "
        f"{bw['sent_Bps']:.0f} B/s/site sent  "
        f"(v2 baseline {BANDWIDTH_BASELINE_BPS:.0f})"
    )
    lines.append("-- timeline attribution overhead (added us vs frame cost) --")
    for name, row in sorted(results["timeline_overhead"].items()):
        lines.append(
            f"  {name:12s} frame={row['frame_us']:.0f}us  "
            f"added={row['added_us']:.1f}us "
            f"(hooks={row['hooks_us']:.1f} stamp={row['stamp_us']:.1f} "
            f"drain@scrape={row['drain_us']:.1f})  "
            f"overhead={row['overhead_fraction']:.2%}  "
            f"[fps off={row['fps_off']:.0f} on={row['fps_on']:.0f}]"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke-test sizes: validates the harness, numbers not comparable",
    )
    parser.add_argument(
        "--out",
        default=".",
        help="directory for BENCH_<date>.json (default: current directory)",
    )
    parser.add_argument(
        "--no-json",
        action="store_true",
        help="print the summary only, write nothing",
    )
    options = parser.parse_args(argv)

    results = run(quick=options.quick)
    print(summarize(results))
    if not options.no_json:
        path = write_bench_json(results, directory=options.out)
        print(f"wrote {path}")
    # The sweep's in-harness assertions are deterministic and sized the
    # same either way, so its gate holds on --quick runs too.
    problems = check_sweep(results["adaptive_sweep"])
    if not options.quick:
        # Regression gates: block fps, send-path bandwidth, predictor
        # quality against the checked-in baselines.  --quick numbers are
        # smoke-test sized, so only full runs gate.
        problems += check_block_fps(results["block_fps"])
        problems += check_bandwidth(results["bandwidth"]["sent_Bps"])
        problems += check_predictor_reduction(results["predictor_comparison"])
        problems += check_timeline_overhead(
            {
                name: row["overhead_fraction"]
                for name, row in results["timeline_overhead"].items()
            }
        )
    for problem in problems:
        print(f"REGRESSION: {problem}", file=sys.stderr)
    if problems:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
