"""Ext-A — N players and observers (journal-version extension).

Measures how session size affects pacing: lockstep waits on the slowest
player, so frame times grow only marginally with player count on a uniform
mesh, and observers are free.
"""

from repro.core.config import SyncConfig
from repro.core.inputs import InputAssignment, PadSource, RandomSource
from repro.core.multisite import (
    SessionPlan,
    build_session,
    players_and_observers_plan,
)
from repro.emulator.machine import create_game
from repro.harness.experiment import collect_metrics
from repro.harness.report import format_table
from repro.metrics.recorder import ConsistencyChecker
from repro.net.netem import NetemConfig


def run_mesh(num_players, num_observers, frames):
    if num_observers:
        plan = players_and_observers_plan(
            SyncConfig.paper_defaults(),
            machine_factory=lambda: create_game("counter"),
            player_sources=[
                PadSource(RandomSource(90 + i), player=i)
                for i in range(num_players)
            ],
            num_observers=num_observers,
            max_frames=frames,
        )
    else:
        plan = SessionPlan(
            config=SyncConfig.paper_defaults(),
            assignment=InputAssignment.standard(num_players),
            machines=[create_game("counter") for __ in range(num_players)],
            sources=[
                PadSource(RandomSource(90 + i), player=i)
                for i in range(num_players)
            ],
            max_frames=frames,
        )
    session = build_session(plan, NetemConfig.for_rtt(0.040))
    session.run(horizon=600.0)
    ConsistencyChecker().verify_traces([vm.runtime.trace for vm in session.vms])
    return collect_metrics(session, 0.040)


def test_multisite_scaling(benchmark, frames):
    frames = min(frames, 900)
    configurations = [(2, 0), (3, 0), (4, 0), (2, 2)]

    def run_all():
        return {
            (p, o): run_mesh(p, o, frames) for p, o in configurations
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        ["players", "observers", "frame_time(ms)", "mad(ms)", "sync(ms)"],
        [
            [
                p,
                o,
                f"{r.frame_time_mean[0] * 1000:.2f}",
                f"{r.frame_time_mad[0] * 1000:.2f}",
                f"{r.synchrony * 1000:.2f}",
            ]
            for (p, o), r in results.items()
        ],
    )
    print("\nExt-A: session size scaling (RTT 40 ms)\n" + table)
    benchmark.extra_info["table"] = table

    # All configurations hold 60 FPS at RTT 40 ms.
    for result in results.values():
        assert result.frame_time_mean[0] < 1 / 60 * 1.05
    # Observers are free: (2 players + 2 observers) paces like (2 players).
    assert results[(2, 2)].frame_time_mean[0] < results[(2, 0)].frame_time_mean[0] * 1.05
