"""Figure 2 — synchrony between two sites vs RTT (Experiment Series 2).

Paper shape to reproduce: the absolute average per-frame time difference
between the two sites stays under ~10 ms while RTT is below the threshold
and rises quickly above it.
"""

from repro.harness.report import format_series2
from repro.harness.series2 import run_series2


def test_figure2_synchrony_between_sites(benchmark, frames, rtts):
    rows = benchmark.pedantic(
        lambda: run_series2(rtts=rtts, frames=frames), rounds=1, iterations=1
    )
    table = format_series2(rows)
    print("\n" + table)
    benchmark.extra_info["table"] = table

    # Paper: "when RTT varies from 0 to 130ms, the average of absolute
    # differences is less than 10ms".
    low = [r for r in rows if r.rtt <= 0.130]
    assert all(r.synchrony < 0.010 for r in low)
    # Past the threshold it "quickly goes up": the worst swept point must
    # sit well above the plateau.
    plateau = max(r.synchrony for r in low)
    assert max(r.synchrony for r in rows) > plateau * 2
    assert all(r.frames_verified == frames for r in rows)
