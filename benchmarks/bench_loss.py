"""Ext-C — behaviour under packet loss (journal-version experiment).

Algorithm 2 re-sends all unacknowledged inputs on every flush, so loss
costs at most flush-interval-sized stalls once the lag budget is spent.
The sweep quantifies frame time, smoothness, synchrony and retransmission
overhead at 0–20 % loss.
"""

from repro.harness.report import format_series3
from repro.harness.series3 import run_series3


def test_packet_loss_sweep(benchmark, frames):
    losses = [0.0, 0.01, 0.02, 0.05, 0.10, 0.20]
    rows = benchmark.pedantic(
        lambda: run_series3(losses=losses, rtt=0.040, frames=frames),
        rounds=1,
        iterations=1,
    )
    table = format_series3(rows)
    print("\n" + table)
    benchmark.extra_info["table"] = table

    # Logical consistency holds at every loss rate.
    assert all(r.frames_verified == frames for r in rows)
    # Moderate loss is absorbed by the lag budget at RTT 40 ms.
    assert rows[1].frame_time_mean < 1 / 60 * 1.05
    # Retransmission work grows with loss.
    assert rows[-1].retransmitted_inputs >= rows[0].retransmitted_inputs
